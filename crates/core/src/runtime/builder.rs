//! The builder-first construction path for the runtime.
//!
//! Configuration knobs accreted on [`Orchestrator`] one `with_*` method
//! at a time over several PRs; with federation the sprawl became an API
//! problem — a [`crate::runtime::Fleet`] needs a *per-backend*
//! configuration value it can hold, pass around, and build services
//! from, not a fluent surface glued to one struct. [`ServiceBuilder`]
//! is that value: one typed, documented home for every knob, producing
//! either a resident [`Service`] ([`ServiceBuilder::build`]) or a
//! one-shot [`Orchestrator`] ([`ServiceBuilder::build_orchestrator`]).
//!
//! The old `Orchestrator::with_*` methods survive as thin delegating
//! wrappers (hidden from the docs) so existing code and goldens compile
//! unchanged; new code should spell configuration through this builder:
//!
//! ```
//! use cloudqc_cloud::CloudBuilder;
//! use cloudqc_core::placement::CloudQcPlacement;
//! use cloudqc_core::runtime::{AdmissionPolicy, ServiceBuilder};
//! use cloudqc_core::schedule::CloudQcScheduler;
//!
//! let cloud = CloudBuilder::paper_default(1).build();
//! let placement = CloudQcPlacement::default();
//! let service = ServiceBuilder::new(&cloud, &placement, &CloudQcScheduler, 7)
//!     .admission(AdmissionPolicy::ShortestJobFirst)
//!     .cache_quantum(2)
//!     .preemption(true)
//!     .build();
//! assert_eq!(service.pending(), 0);
//! ```

use crate::placement::{PlacementAlgorithm, PlacementCache};
use crate::runtime::orchestrator::Orchestrator;
use crate::runtime::service::{RuntimeConfig, Service};
use crate::runtime::{AdmissionPolicy, LoadShedPolicy};
use crate::schedule::Scheduler;
use cloudqc_cloud::Cloud;

/// Typed construction of one runtime configuration: every knob the
/// epoch, continuous, and fleet faces share, with the same defaults as
/// [`Orchestrator::new`] (priority-aware backfill admission, placement
/// cache on with the exact signature, batched allocation, sharded
/// front layer, fingerprint seeding; preemption, aging, and load
/// shedding off; worker threads from `CLOUDQC_THREADS`).
///
/// Terminal calls: [`ServiceBuilder::build`] for a resident
/// [`Service`], [`ServiceBuilder::build_orchestrator`] for the one-shot
/// wrapper, or hand the builder to
/// [`crate::runtime::FleetBuilder::backend`] to make it one backend of
/// a federated fleet.
pub struct ServiceBuilder<'a> {
    cfg: RuntimeConfig<'a>,
}

impl<'a> ServiceBuilder<'a> {
    /// A configuration over one cloud, placement algorithm, and network
    /// scheduler, with the default knob settings.
    pub fn new(
        cloud: &'a Cloud,
        placement: &'a dyn PlacementAlgorithm,
        scheduler: &'a dyn Scheduler,
        seed: u64,
    ) -> Self {
        ServiceBuilder {
            cfg: RuntimeConfig {
                cloud,
                placement,
                scheduler,
                admission: AdmissionPolicy::default(),
                path_reservation: false,
                placement_cache: true,
                cache_quantum: 1,
                cache_capacity: PlacementCache::DEFAULT_CAPACITY,
                placement_repair: false,
                batched_allocation: true,
                sharded_front_layer: true,
                fingerprint_seeding: true,
                preemption: false,
                aging_rate: 0.0,
                load_shed: None,
                worker_threads: crate::runtime::env_worker_threads(),
                seed,
            },
        }
    }

    pub(crate) fn from_config(cfg: RuntimeConfig<'a>) -> Self {
        ServiceBuilder { cfg }
    }

    /// Selects the admission policy (default: priority-aware backfill).
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Enables executor path reservation (swapping-station holds, see
    /// [`crate::exec::Executor::with_path_reservation`]; off by
    /// default).
    pub fn path_reservation(mut self, enabled: bool) -> Self {
        self.cfg.path_reservation = enabled;
        self
    }

    /// Enables or disables the placement cache (on by default). With
    /// the default exact signature (quantum 1) a hit replays an
    /// identical computation, so cached and uncached runs produce
    /// byte-identical schedules; disable only to A/B the cache or when
    /// a placement algorithm violates seeded determinism.
    pub fn placement_cache(mut self, enabled: bool) -> Self {
        self.cfg.placement_cache = enabled;
        self
    }

    /// Sets the placement cache's free-capacity quantization bucket
    /// (default 1 = exact; see [`PlacementCache::with_quantum`]).
    /// Coarser buckets raise the hit rate but let capacity drift within
    /// a bucket reuse stale results, which can shift schedules (never
    /// feasibility).
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn cache_quantum(mut self, quantum: usize) -> Self {
        assert!(quantum > 0, "quantization bucket must be positive");
        self.cfg.cache_quantum = quantum;
        self
    }

    /// Caps the placement cache's entry count (default
    /// [`PlacementCache::DEFAULT_CAPACITY`]; see
    /// [`PlacementCache::with_capacity`]). Long-lived services facing
    /// unbounded distinct signatures evict least-recently-used entries
    /// instead of growing without bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        self.cfg.cache_capacity = capacity;
        self
    }

    /// Enables the placement cache's incremental-repair tier (off by
    /// default; see [`PlacementCache::with_repair`]). On an exact-key
    /// miss, the cache looks for a placement of the same circuit and
    /// seed cached under an *adjacent* free-capacity bucket (every
    /// per-QPU bucket within ±1) and patches it with
    /// [`crate::placement::repair()`] — relocating only the qubits on
    /// now-overloaded QPUs — instead of re-running the full placement
    /// pipeline. Every repaired placement passes the same
    /// [`crate::placement::Placement::fits`] guard as an exact hit, and
    /// an unpatchable near-miss falls through to a full placement, so
    /// feasibility is never weakened; like a coarse
    /// [`ServiceBuilder::cache_quantum`], reuse under a *shifted*
    /// capacity vector can pick different (never infeasible) placements
    /// than a cold run, which is why the tier is opt-in. Repairs and
    /// fallbacks are counted separately in
    /// [`crate::placement::CacheStats`].
    pub fn placement_repair(mut self, enabled: bool) -> Self {
        self.cfg.placement_repair = enabled;
        self
    }

    /// Enables or disables the executor's change-driven allocation
    /// elision (on by default; see
    /// [`crate::exec::Executor::with_batched_allocation`]).
    pub fn batched_allocation(mut self, enabled: bool) -> Self {
        self.cfg.batched_allocation = enabled;
        self
    }

    /// Enables or disables the executor's per-QPU-pair sharded front
    /// layer (on by default; see
    /// [`crate::exec::Executor::with_sharded_front_layer`]). Sharded
    /// and global runs produce byte-identical seeded schedules;
    /// disabling is for A/B comparison.
    pub fn sharded_front_layer(mut self, enabled: bool) -> Self {
        self.cfg.sharded_front_layer = enabled;
        self
    }

    /// Derives each job's placement seed from its circuit's structural
    /// fingerprint instead of its workload index (on by default).
    ///
    /// With fingerprint seeding, two jobs submitting the *same circuit
    /// shape* against the *same free-capacity vector* are by
    /// construction the same placement problem — which is exactly the
    /// placement cache's key, so steady-state traffic of repeated
    /// shapes hits the cache instead of re-running the full pipeline
    /// per admission. Runs remain deterministic per run seed, and
    /// cached and uncached runs remain byte-identical (the seed is a
    /// function of the key either way). Disabling restores the legacy
    /// per-workload-index seed derivation — and with it the exact
    /// schedules of pre-default seeded runs (the opt-out golden test
    /// pins them).
    pub fn fingerprint_seeding(mut self, enabled: bool) -> Self {
        self.cfg.fingerprint_seeding = enabled;
        self
    }

    /// Enables SLA-driven preemption (off by default): admitting a job
    /// that carries a deadline suspends every running deadline-free
    /// job's remote gates, returning their communication pairs to the
    /// fabric until no deadline-carrying job remains in flight.
    /// Suspended jobs keep their computing qubits (placements are not
    /// migratable) and resume exactly where they parked.
    pub fn preemption(mut self, enabled: bool) -> Self {
        self.cfg.preemption = enabled;
        self
    }

    /// Sets the queue aging rate (default 0 = off): each waiting job's
    /// queue metric grows by `rate` per tick it has waited, so
    /// starvation-prone policies ([`AdmissionPolicy::ShortestJobFirst`],
    /// [`AdmissionPolicy::DeadlineAware`]) eventually serve every
    /// waiter. Arrival-ordered policies ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn aging_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "aging rate must be finite and non-negative"
        );
        self.cfg.aging_rate = rate;
        self
    }

    /// Enables admission-time load shedding (off by default): arrivals
    /// are rejected with [`crate::error::ExecError::LoadShed`] while
    /// the service is over the policy's waiting-queue-depth or
    /// streaming-p99 threshold. In a fleet, a shed is also the router's
    /// per-backend backpressure signal: shed jobs re-route to another
    /// backend instead of being dropped.
    pub fn load_shedding(mut self, policy: LoadShedPolicy) -> Self {
        self.cfg.load_shed = Some(policy);
        self
    }

    /// Sets the worker-thread count for the deterministic parallel hot
    /// path (clamped to ≥ 1; 1 = fully serial). The default is read
    /// from the `CLOUDQC_THREADS` environment variable (see
    /// [`crate::runtime::env_worker_threads`]), falling back to 1.
    ///
    /// At ≥ 2 threads the executor evaluates QPU-disjoint shard
    /// components on a scoped worker pool
    /// ([`crate::exec::Executor::with_worker_threads`]) and the engine
    /// speculates admission placements for the waiting queue in
    /// parallel — both k-way-merged back into the exact serial order,
    /// so seeded schedules are byte-identical at every worker count
    /// (pinned in `tests/runtime_golden.rs`).
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.cfg.worker_threads = threads.max(1);
        self
    }

    /// Builds the resident [`Service`] this configuration describes.
    pub fn build(self) -> Service<'a> {
        Service::from_config(self.cfg)
    }

    /// Builds the one-shot [`Orchestrator`] wrapper instead — the entry
    /// point finite-trace experiments keep using.
    pub fn build_orchestrator(self) -> Orchestrator<'a> {
        Orchestrator::from_config(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::CloudQcPlacement;
    use crate::schedule::CloudQcScheduler;
    use crate::workload::Workload;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    #[test]
    fn builder_and_legacy_with_methods_agree() {
        // The delegating wrappers and the builder must describe the
        // same configuration — same workload, byte-identical outcomes.
        let cloud = CloudBuilder::paper_default(5).build();
        let placement = CloudQcPlacement::default();
        let w = Workload::poisson(
            &[
                catalog::by_name("qft_n29").unwrap(),
                catalog::by_name("ghz_n40").unwrap(),
            ],
            5,
            2_000.0,
            5,
        );
        let legacy = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, 5)
            .with_admission(AdmissionPolicy::ShortestJobFirst)
            .with_cache_quantum(2)
            .with_aging_rate(0.5)
            .run(&w)
            .unwrap();
        let built = ServiceBuilder::new(&cloud, &placement, &CloudQcScheduler, 5)
            .admission(AdmissionPolicy::ShortestJobFirst)
            .cache_quantum(2)
            .aging_rate(0.5)
            .build_orchestrator()
            .run(&w)
            .unwrap();
        assert_eq!(legacy.outcomes, built.outcomes);
        assert_eq!(legacy.rejected, built.rejected);
    }

    #[test]
    fn built_service_runs_epochs() {
        let cloud = CloudBuilder::paper_default(3).build();
        let placement = CloudQcPlacement::default();
        let mut svc = ServiceBuilder::new(&cloud, &placement, &CloudQcScheduler, 9)
            .worker_threads(1)
            .build();
        svc.submit(catalog::by_name("vqe_n4").unwrap(), cloudqc_sim::Tick::ZERO);
        let report = svc.drain().unwrap();
        assert_eq!(report.completed, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cache_quantum_is_rejected() {
        let cloud = CloudBuilder::paper_default(3).build();
        let placement = CloudQcPlacement::default();
        let _ = ServiceBuilder::new(&cloud, &placement, &CloudQcScheduler, 1).cache_quantum(0);
    }
}
