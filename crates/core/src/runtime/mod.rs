//! The unified cloud runtime: workload → admission → executor →
//! metrics, one-shot, epoch-resident, or continuous.
//!
//! One event-driven orchestration loop serves every execution mode of
//! the paper — batch (§VI.D) and incoming jobs (§V.B) — plus the open
//! scenarios the ROADMAP asks for (bursty traffic, trace replay,
//! diurnal curves, heavy-tailed sizes), under pluggable admission
//! policies:
//!
//! ```text
//!  Workload (batch / poisson / bursty / trace /      crate::workload
//!            diurnal / pareto_sizes)
//!      │ arrivals
//!      ▼
//!  Service core ── AdmissionPolicy (FCFS / backfill / priority /
//!   (epochs or      SJF / weighted fair-share / deadline-aware)
//!    continuous     + aging, preemption, LoadShedPolicy
//!    clock)
//!      │ placements (crate::placement, persistent PlacementCache)
//!      ▼
//!  Executor — shared EPR rounds, incremental front layer,  crate::exec
//!             suspend/resume for preemption
//!      │ completions
//!      ▼
//!  RunReport (per-epoch) / WindowReport (continuous window) +
//!  OnlineReport (streaming, lifetime clock)   cloudqc_sim::{series,online}
//! ```
//!
//! The loop lives in the resident [`Service`], which exposes two faces
//! over one engine (`runtime/engine.rs`): epoch mode (`submit` /
//! `drive` / `drain`, each drive a fresh clock-0 era) and the
//! continuous clock (`drive_until` / `drive_for` /
//! `drive_to_quiescence`, submissions landing on the live executor
//! mid-flight). The one-shot [`Orchestrator::run`] drives exactly one
//! epoch of a fresh service, so finite-trace experiments and service
//! epochs are the same computation by construction — and epoch mode is
//! itself the degenerate case of the continuous clock (see the golden
//! test in `tests/runtime_golden.rs`).

mod admission;
mod builder;
mod engine;
pub mod fleet;
mod orchestrator;
pub mod routing;
pub mod service;

pub use admission::{AdmissionPolicy, LoadShedPolicy};
pub use builder::ServiceBuilder;
pub use fleet::{Fleet, FleetBuilder, FleetReport};
pub use orchestrator::{JobRecord, Orchestrator, RunReport};
pub use routing::{
    CheapestPlacement, RandomRouting, RoundRobin, RouteContext, RoutingPolicy, TenantAffinity,
    UtilizationBalanced,
};
pub use service::{Service, ServiceReport, WindowReport};

/// The default worker-thread count, read from the `CLOUDQC_THREADS`
/// environment variable (clamped to ≥ 1; unset, empty, or unparsable
/// values fall back to 1 = fully serial).
///
/// [`Orchestrator::new`] seeds its configuration from this, so bins and
/// benches pick up the override without plumbing a flag — and because
/// the parallel hot path is deterministic, changing it never changes a
/// seeded schedule, only wall-clock time. Call sites that want an
/// explicit count use [`Orchestrator::with_worker_threads`].
pub fn env_worker_threads() -> usize {
    std::env::var("CLOUDQC_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}
