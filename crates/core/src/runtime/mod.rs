//! The unified cloud runtime: workload → admission → executor →
//! metrics, one-shot or resident.
//!
//! One event-driven orchestration loop serves every execution mode of
//! the paper — batch (§VI.D) and incoming jobs (§V.B) — plus the open
//! scenarios the ROADMAP asks for (bursty traffic, trace replay,
//! diurnal curves, heavy-tailed sizes), under pluggable admission
//! policies:
//!
//! ```text
//!  Workload (batch / poisson / bursty / trace /      crate::workload
//!            diurnal / pareto_sizes)
//!      │ arrivals
//!      ▼
//!  Service core ── AdmissionPolicy (FCFS / backfill / priority /
//!   (epochs)        SJF / weighted fair-share / deadline-aware)
//!      │ placements (crate::placement, persistent PlacementCache)
//!      ▼
//!  Executor — shared EPR rounds, incremental front layer  crate::exec
//!      │ completions
//!      ▼
//!  RunReport (per-epoch, retained records) +
//!  OnlineReport (streaming, constant memory)      cloudqc_sim::{series,online}
//! ```
//!
//! The loop lives in the resident [`Service`] (`submit` / `drive` /
//! `drain` epochs over a persistent placement cache and streaming
//! metrics); the one-shot [`Orchestrator::run`] drives exactly one
//! epoch of a fresh service, so finite-trace experiments and service
//! epochs are the same computation by construction.

mod admission;
mod orchestrator;
pub mod service;

pub use admission::AdmissionPolicy;
pub use orchestrator::{JobRecord, Orchestrator, RunReport};
pub use service::{Service, ServiceReport};
