//! The unified cloud runtime: workload → admission → executor →
//! metrics.
//!
//! One event-driven orchestration loop serves every execution mode of
//! the paper — batch (§VI.D) and incoming jobs (§V.B) — plus the open
//! scenarios the ROADMAP asks for (bursty traffic, trace replay),
//! under pluggable admission policies:
//!
//! ```text
//!  Workload (batch / poisson / bursty / trace)       crate::workload
//!      │ arrivals
//!      ▼
//!  Orchestrator ── AdmissionPolicy (FCFS / backfill / priority)
//!      │ placements (crate::placement)
//!      ▼
//!  Executor — shared EPR rounds, incremental front layer  crate::exec
//!      │ completions
//!      ▼
//!  RunReport — per-job latency breakdown, throughput & utilization
//!  time series                                       cloudqc_sim::series
//! ```

mod admission;
mod orchestrator;

pub use admission::AdmissionPolicy;
pub use orchestrator::{JobRecord, Orchestrator, RunReport};
