//! The CloudQC framework: network-aware circuit placement and resource
//! scheduling for a multi-tenant quantum cloud.
//!
//! This crate is the reproduction of the paper's contribution proper
//! (*CloudQC: A Network-aware Framework for Multi-tenant Distributed
//! Quantum Computing*, ICDCS 2025), built on the workspace substrates
//! (`cloudqc-graph`, `cloudqc-circuit`, `cloudqc-cloud`, `cloudqc-sim`):
//!
//! * [`placement`] — Algorithm 1 (partition sweep + scoring), Algorithm
//!   2 (community detection + center mapping), the CloudQC-BFS variant,
//!   and the Random / SA / GA baselines of Table III.
//! * [`schedule`] — the remote DAG (Fig. 3b), longest-path priorities,
//!   and the CloudQC / Greedy / Average / Random allocation policies of
//!   §VI.C.
//! * [`exec`] — the discrete-event executor: local gate latencies,
//!   probabilistic EPR rounds, shared communication qubits across
//!   concurrent jobs, an incrementally maintained allocation front
//!   layer.
//! * [`runtime`] / [`workload`] — the unified cloud runtime: seed-
//!   deterministic workloads (batch, Poisson, bursty, trace replay,
//!   diurnal curves, heavy-tailed sizes) through pluggable admission
//!   (FCFS, backfill, priority-aware, shortest-job-first, weighted
//!   fair-share, deadline-aware) into the shared executor. The
//!   resident [`runtime::Service`] serves an unbounded stream in
//!   epochs over a persistent placement cache with streaming metrics;
//!   [`runtime::Orchestrator::run`] is the one-epoch wrapper for
//!   finite traces, reporting per-job latency breakdowns.
//! * [`batch`] / [`tenant`] — the batch manager (Eq. 11) and the
//!   multi-tenant entry points of §VI.D, thin wrappers over [`runtime`].
//!
//! # Placing and executing one circuit
//!
//! ```
//! use cloudqc_circuit::generators::catalog;
//! use cloudqc_cloud::CloudBuilder;
//! use cloudqc_core::placement::{CloudQcPlacement, PlacementAlgorithm, cost};
//! use cloudqc_core::schedule::CloudQcScheduler;
//! use cloudqc_core::simulate_job;
//!
//! let cloud = CloudBuilder::paper_default(42).build();
//! let circuit = catalog::by_name("knn_n67").unwrap();
//!
//! let placement = CloudQcPlacement::default()
//!     .place(&circuit, &cloud, &cloud.status(), 7)
//!     .unwrap();
//! println!("remote ops: {}", cost::remote_op_count(&circuit, &placement));
//!
//! let result = simulate_job(&circuit, &placement, &cloud, &CloudQcScheduler, 7);
//! println!("JCT: {} ticks", result.completion_time.as_ticks());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod error;
pub mod exec;
pub mod placement;
pub mod runtime;
pub mod schedule;
pub mod tenant;
pub mod workload;

pub use error::{ExecError, PlacementError};
pub use exec::{simulate_job, AllocStats, Executor, JobResult};
pub use runtime::{JobRecord, Orchestrator, RunReport, Service, ServiceReport};
pub use workload::Workload;
