//! Framework configuration knobs.
//!
//! The paper leaves several constants unpublished (λ₁..λ₃ of Eq. 11,
//! the α/β scoring weights of §V.B, the ε remote-operation threshold of
//! Eq. 6, and the imbalance-factor list of Algorithm 1). The defaults
//! here are documented in DESIGN.md §7 and exposed for sweeps.

/// Weights of the batch-ordering metric
/// `I_i = λ₁·#CNOTs/n_i + λ₂·n_i + λ₃·d_i` (Eq. 11).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BatchWeights {
    /// λ₁: weight of two-qubit-gate density.
    pub lambda1: f64,
    /// λ₂: weight of qubit count (resource demand).
    pub lambda2: f64,
    /// λ₃: weight of circuit depth (execution time).
    pub lambda3: f64,
}

impl Default for BatchWeights {
    /// λ = (1, 1, 0.1): density and width dominate, depth tie-breaks.
    fn default() -> Self {
        BatchWeights {
            lambda1: 1.0,
            lambda2: 1.0,
            lambda3: 0.1,
        }
    }
}

/// Configuration of the CloudQC placement pipeline (Algorithm 1).
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementConfig {
    /// Imbalance factors α to sweep in the graph-partition step.
    pub imbalance_factors: Vec<f64>,
    /// How many part counts to try above the minimum feasible `k`
    /// (`k ∈ kmin ..= kmin + k_sweep_width`, capped by the QPU count).
    pub k_sweep_width: usize,
    /// Scoring weight α of `S = α/T + β/C` (estimated time term).
    pub score_alpha: f64,
    /// Scoring weight β of `S = α/T + β/C` (communication cost term).
    pub score_beta: f64,
    /// ε: maximum remote operations borne by a single QPU (Eq. 6).
    /// `usize::MAX` disables the constraint.
    pub epsilon: usize,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            imbalance_factors: vec![0.1, 0.3, 0.5],
            k_sweep_width: 4,
            score_alpha: 1.0,
            score_beta: 1.0,
            epsilon: usize::MAX,
        }
    }
}

impl PlacementConfig {
    /// Sets the imbalance-factor sweep list.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or contains a negative factor.
    pub fn with_imbalance_factors(mut self, factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "need at least one imbalance factor");
        assert!(
            factors.iter().all(|&f| f >= 0.0),
            "imbalance factors must be non-negative"
        );
        self.imbalance_factors = factors;
        self
    }

    /// Sets the remote-operation threshold ε (Eq. 6).
    pub fn with_epsilon(mut self, epsilon: usize) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the scoring weights.
    pub fn with_score_weights(mut self, alpha: f64, beta: f64) -> Self {
        self.score_alpha = alpha;
        self.score_beta = beta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PlacementConfig::default();
        assert!(!c.imbalance_factors.is_empty());
        assert_eq!(c.epsilon, usize::MAX);
        let w = BatchWeights::default();
        assert!(w.lambda1 > 0.0 && w.lambda2 > 0.0 && w.lambda3 > 0.0);
    }

    #[test]
    fn builder_setters() {
        let c = PlacementConfig::default()
            .with_imbalance_factors(vec![0.2])
            .with_epsilon(50)
            .with_score_weights(2.0, 0.5);
        assert_eq!(c.imbalance_factors, vec![0.2]);
        assert_eq!(c.epsilon, 50);
        assert_eq!(c.score_alpha, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_factors_rejected() {
        PlacementConfig::default().with_imbalance_factors(vec![]);
    }
}
