//! Seed-deterministic workload generators for the runtime layer.
//!
//! A [`Workload`] is a list of circuits with arrival times — the input
//! of the [`crate::runtime::Orchestrator`]. Generators cover the
//! paper's batch mode (§VI.D: everything arrives at `t = 0`), the
//! open-arrival incoming mode (§V.B: Poisson arrivals), bursty traffic,
//! and replay of explicit traces. All stochastic generators draw from
//! forked [`SimRng`] streams, so the same seed always produces the same
//! workload.

use cloudqc_circuit::Circuit;
use cloudqc_sim::{SimRng, Tick};
use rand::RngExt;

/// One job of a workload: a circuit and its arrival time.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadJob {
    /// The circuit to place and execute.
    pub circuit: Circuit,
    /// When the job arrives at the cloud.
    pub arrival: Tick,
}

/// A set of jobs with arrival times, in submission order.
///
/// Job indices into the workload are stable: the orchestrator reports
/// outcomes under the same indices.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    jobs: Vec<WorkloadJob>,
}

impl Workload {
    /// Batch mode: every circuit arrives at `t = 0` (paper §VI.D).
    pub fn batch(circuits: impl IntoIterator<Item = Circuit>) -> Self {
        Workload {
            jobs: circuits
                .into_iter()
                .map(|circuit| WorkloadJob {
                    circuit,
                    arrival: Tick::ZERO,
                })
                .collect(),
        }
    }

    /// Replays an explicit trace of `(circuit, arrival)` pairs, e.g.
    /// recorded from a production queue. Any order; the orchestrator
    /// sorts by arrival internally.
    pub fn trace(jobs: impl IntoIterator<Item = (Circuit, Tick)>) -> Self {
        Workload {
            jobs: jobs
                .into_iter()
                .map(|(circuit, arrival)| WorkloadJob { circuit, arrival })
                .collect(),
        }
    }

    /// Open arrivals: `n` jobs drawn round-robin from `pool`, with
    /// exponentially distributed inter-arrival gaps of mean
    /// `mean_interarrival` ticks — a Poisson arrival process
    /// (deterministic per seed).
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty (with `n > 0`) or the mean is not
    /// positive and finite.
    ///
    /// # Example
    ///
    /// ```
    /// use cloudqc_circuit::generators::catalog;
    /// use cloudqc_core::workload::Workload;
    ///
    /// let pool = vec![catalog::by_name("vqe_n4").unwrap()];
    /// let w = Workload::poisson(&pool, 5, 1_000.0, 7);
    /// assert_eq!(w.len(), 5);
    /// assert_eq!(w, Workload::poisson(&pool, 5, 1_000.0, 7));
    /// ```
    pub fn poisson(pool: &[Circuit], n: usize, mean_interarrival: f64, seed: u64) -> Self {
        let arrivals = poisson_arrivals(n, mean_interarrival, seed);
        assert!(n == 0 || !pool.is_empty(), "circuit pool must be non-empty");
        Workload {
            jobs: arrivals
                .into_iter()
                .enumerate()
                .map(|(i, arrival)| WorkloadJob {
                    circuit: pool[i % pool.len()].clone(),
                    arrival,
                })
                .collect(),
        }
    }

    /// Bursty traffic: `bursts` waves of `jobs_per_burst` simultaneous
    /// arrivals (circuits drawn round-robin from `pool`), with
    /// exponentially distributed gaps of mean `mean_burst_gap` ticks
    /// between waves — the flash-crowd pattern batch admission must
    /// absorb. Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty (with work requested) or the gap mean
    /// is not positive and finite.
    pub fn bursty(
        pool: &[Circuit],
        bursts: usize,
        jobs_per_burst: usize,
        mean_burst_gap: f64,
        seed: u64,
    ) -> Self {
        assert!(
            bursts * jobs_per_burst == 0 || !pool.is_empty(),
            "circuit pool must be non-empty"
        );
        assert!(
            mean_burst_gap.is_finite() && mean_burst_gap > 0.0,
            "mean burst gap must be positive"
        );
        let mut rng = SimRng::new(seed).fork("bursts").into_std();
        let mut t = 0.0f64;
        let mut jobs = Vec::with_capacity(bursts * jobs_per_burst);
        for burst in 0..bursts {
            if burst > 0 {
                let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                t += -mean_burst_gap * u.ln();
            }
            for j in 0..jobs_per_burst {
                let i = burst * jobs_per_burst + j;
                jobs.push(WorkloadJob {
                    circuit: pool[i % pool.len()].clone(),
                    arrival: Tick::new(t as u64),
                });
            }
        }
        Workload { jobs }
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[WorkloadJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total computing-qubit demand across all jobs.
    pub fn total_qubits(&self) -> usize {
        self.jobs.iter().map(|j| j.circuit.num_qubits()).sum()
    }

    /// The latest arrival time (`Tick::ZERO` when empty).
    pub fn last_arrival(&self) -> Tick {
        self.jobs
            .iter()
            .map(|j| j.arrival)
            .max()
            .unwrap_or(Tick::ZERO)
    }
}

/// Samples `n` arrival times with exponentially distributed
/// inter-arrival gaps of the given mean (in ticks) — a Poisson arrival
/// process for incoming-job-mode experiments. Deterministic per seed.
///
/// # Panics
///
/// Panics if `mean_interarrival` is not positive and finite.
pub fn poisson_arrivals(n: usize, mean_interarrival: f64, seed: u64) -> Vec<Tick> {
    assert!(
        mean_interarrival.is_finite() && mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = SimRng::new(seed).fork("arrivals").into_std();
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-transform sampling of Exp(1/mean).
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            t += -mean_interarrival * u.ln();
            Tick::new(t as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_circuit::generators::catalog;

    fn pool() -> Vec<Circuit> {
        vec![
            catalog::by_name("vqe_n4").unwrap(),
            catalog::by_name("qft_n13").unwrap(),
        ]
    }

    #[test]
    fn batch_arrives_at_zero() {
        let w = Workload::batch(pool());
        assert_eq!(w.len(), 2);
        assert!(w.jobs().iter().all(|j| j.arrival == Tick::ZERO));
        assert_eq!(w.last_arrival(), Tick::ZERO);
        assert_eq!(w.total_qubits(), 4 + 13);
    }

    #[test]
    fn trace_replays_pairs() {
        let p = pool();
        let w = Workload::trace(vec![
            (p[0].clone(), Tick::new(500)),
            (p[1].clone(), Tick::new(100)),
        ]);
        assert_eq!(w.jobs()[0].arrival, Tick::new(500));
        assert_eq!(w.jobs()[1].arrival, Tick::new(100));
        assert_eq!(w.last_arrival(), Tick::new(500));
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let p = pool();
        let a = Workload::poisson(&p, 20, 300.0, 11);
        let b = Workload::poisson(&p, 20, 300.0, 11);
        assert_eq!(a, b);
        for pair in a.jobs().windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        // Round-robin circuit assignment.
        assert_eq!(a.jobs()[0].circuit.num_qubits(), 4);
        assert_eq!(a.jobs()[1].circuit.num_qubits(), 13);
        assert_eq!(a.jobs()[2].circuit.num_qubits(), 4);
    }

    #[test]
    fn poisson_matches_legacy_arrival_stream() {
        // Workload::poisson must replay the exact arrival process of
        // the standalone sampler, so experiments keep their numbers.
        let p = pool();
        let w = Workload::poisson(&p, 8, 1_000.0, 3);
        let direct = poisson_arrivals(8, 1_000.0, 3);
        let from_workload: Vec<Tick> = w.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(from_workload, direct);
    }

    #[test]
    fn bursty_clusters_arrivals() {
        let p = pool();
        let w = Workload::bursty(&p, 3, 4, 5_000.0, 7);
        assert_eq!(w.len(), 12);
        // Jobs within one burst share an arrival instant.
        for burst in 0..3 {
            let t0 = w.jobs()[burst * 4].arrival;
            for j in 0..4 {
                assert_eq!(w.jobs()[burst * 4 + j].arrival, t0);
            }
        }
        // Bursts are strictly ordered (gap sampling can't collide for
        // this seed).
        assert!(w.jobs()[0].arrival < w.jobs()[4].arrival);
        assert!(w.jobs()[4].arrival < w.jobs()[8].arrival);
        assert_eq!(w, Workload::bursty(&p, 3, 4, 5_000.0, 7));
    }

    #[test]
    fn empty_workloads() {
        let w = Workload::batch(Vec::<Circuit>::new());
        assert!(w.is_empty());
        assert_eq!(Workload::poisson(&[], 0, 100.0, 0).len(), 0);
        assert_eq!(Workload::bursty(&[], 0, 5, 100.0, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn poisson_rejects_empty_pool() {
        Workload::poisson(&[], 3, 100.0, 0);
    }
}
