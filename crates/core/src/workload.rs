//! Seed-deterministic workload generators for the runtime layer.
//!
//! A [`Workload`] is a list of circuits with arrival times — the input
//! of the [`crate::runtime::Orchestrator`] and the resident
//! [`crate::runtime::Service`]. Generators cover the paper's batch mode
//! (§VI.D: everything arrives at `t = 0`), the open-arrival incoming
//! mode (§V.B: Poisson arrivals), bursty traffic, replay of explicit
//! traces, *diurnal* traffic (a sinusoidally rate-modulated Poisson
//! process, the day/night curve a long-lived service faces), and
//! heavy-tailed ([`Workload::pareto_sizes`]) job-size streams. All
//! stochastic generators draw from forked [`SimRng`] streams, so the
//! same seed always produces the same workload.
//!
//! Jobs additionally carry multi-tenancy metadata for the admission
//! policies: a tenant id and fair-share weight
//! ([`Workload::assign_round_robin_tenants`]) and an optional absolute
//! SLA deadline ([`Workload::with_uniform_sla`]), consumed by the
//! weighted-fair-share and deadline-aware policies respectively.

use cloudqc_circuit::Circuit;
use cloudqc_sim::{SimRng, Tick};
use rand::RngExt;

/// One job of a workload: a circuit, its arrival time, and the
/// multi-tenancy metadata the admission policies consume.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadJob {
    /// The circuit to place and execute.
    pub circuit: Circuit,
    /// When the job arrives at the cloud.
    pub arrival: Tick,
    /// The submitting tenant (0 when the workload is single-tenant).
    pub tenant: usize,
    /// The tenant's fair-share weight (1.0 by default); consumed by
    /// [`crate::runtime::AdmissionPolicy::WeightedFairShare`].
    pub weight: f64,
    /// Absolute SLA deadline (arrival + SLA budget), if any; consumed
    /// by [`crate::runtime::AdmissionPolicy::DeadlineAware`].
    pub deadline: Option<Tick>,
}

impl WorkloadJob {
    /// A single-tenant, weight-1, deadline-free job — the default
    /// metadata every generator starts from.
    pub fn new(circuit: Circuit, arrival: Tick) -> Self {
        WorkloadJob {
            circuit,
            arrival,
            tenant: 0,
            weight: 1.0,
            deadline: None,
        }
    }
}

/// A set of jobs with arrival times, in submission order.
///
/// Job indices into the workload are stable: the orchestrator reports
/// outcomes under the same indices.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    jobs: Vec<WorkloadJob>,
}

impl Workload {
    /// Batch mode: every circuit arrives at `t = 0` (paper §VI.D).
    pub fn batch(circuits: impl IntoIterator<Item = Circuit>) -> Self {
        Workload {
            jobs: circuits
                .into_iter()
                .map(|circuit| WorkloadJob::new(circuit, Tick::ZERO))
                .collect(),
        }
    }

    /// Replays an explicit trace of `(circuit, arrival)` pairs, e.g.
    /// recorded from a production queue. Any order; the orchestrator
    /// sorts by arrival internally.
    pub fn trace(jobs: impl IntoIterator<Item = (Circuit, Tick)>) -> Self {
        Workload {
            jobs: jobs
                .into_iter()
                .map(|(circuit, arrival)| WorkloadJob::new(circuit, arrival))
                .collect(),
        }
    }

    /// Open arrivals: `n` jobs drawn round-robin from `pool`, with
    /// exponentially distributed inter-arrival gaps of mean
    /// `mean_interarrival` ticks — a Poisson arrival process
    /// (deterministic per seed).
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty (with `n > 0`) or the mean is not
    /// positive and finite.
    ///
    /// # Example
    ///
    /// ```
    /// use cloudqc_circuit::generators::catalog;
    /// use cloudqc_core::workload::Workload;
    ///
    /// let pool = vec![catalog::by_name("vqe_n4").unwrap()];
    /// let w = Workload::poisson(&pool, 5, 1_000.0, 7);
    /// assert_eq!(w.len(), 5);
    /// assert_eq!(w, Workload::poisson(&pool, 5, 1_000.0, 7));
    /// ```
    pub fn poisson(pool: &[Circuit], n: usize, mean_interarrival: f64, seed: u64) -> Self {
        let arrivals = poisson_arrivals(n, mean_interarrival, seed);
        assert!(n == 0 || !pool.is_empty(), "circuit pool must be non-empty");
        Workload {
            jobs: arrivals
                .into_iter()
                .enumerate()
                .map(|(i, arrival)| WorkloadJob::new(pool[i % pool.len()].clone(), arrival))
                .collect(),
        }
    }

    /// Bursty traffic: `bursts` waves of `jobs_per_burst` simultaneous
    /// arrivals (circuits drawn round-robin from `pool`), with
    /// exponentially distributed gaps of mean `mean_burst_gap` ticks
    /// between waves — the flash-crowd pattern batch admission must
    /// absorb. Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty (with work requested) or the gap mean
    /// is not positive and finite.
    pub fn bursty(
        pool: &[Circuit],
        bursts: usize,
        jobs_per_burst: usize,
        mean_burst_gap: f64,
        seed: u64,
    ) -> Self {
        assert!(
            bursts * jobs_per_burst == 0 || !pool.is_empty(),
            "circuit pool must be non-empty"
        );
        assert!(
            mean_burst_gap.is_finite() && mean_burst_gap > 0.0,
            "mean burst gap must be positive"
        );
        let mut rng = SimRng::new(seed).fork("bursts").into_std();
        let mut t = 0.0f64;
        let mut jobs = Vec::with_capacity(bursts * jobs_per_burst);
        for burst in 0..bursts {
            if burst > 0 {
                let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                t += -mean_burst_gap * u.ln();
            }
            for j in 0..jobs_per_burst {
                let i = burst * jobs_per_burst + j;
                jobs.push(WorkloadJob::new(
                    pool[i % pool.len()].clone(),
                    Tick::new(t as u64),
                ));
            }
        }
        Workload { jobs }
    }

    /// Diurnal traffic: `n` jobs drawn round-robin from `pool`, arriving
    /// as a *non-homogeneous* Poisson process whose rate follows a
    /// day/night curve — `λ(t) = (1 + amplitude·sin(2πt/period)) /
    /// mean_interarrival`. `amplitude` in `[0, 1)` sets how deep the
    /// trough is relative to the mean rate (0 degenerates to
    /// [`Workload::poisson`]’s homogeneous process, statistically).
    /// Sampled by Lewis–Shedler thinning at the peak rate, so the
    /// stream is deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty (with `n > 0`), the mean is not
    /// positive and finite, `period == 0`, or `amplitude` is outside
    /// `[0, 1)`.
    ///
    /// # Example
    ///
    /// ```
    /// use cloudqc_circuit::generators::catalog;
    /// use cloudqc_core::workload::Workload;
    ///
    /// let pool = vec![catalog::by_name("vqe_n4").unwrap()];
    /// let w = Workload::diurnal(&pool, 6, 1_000.0, 20_000, 0.8, 7);
    /// assert_eq!(w.len(), 6);
    /// assert_eq!(w, Workload::diurnal(&pool, 6, 1_000.0, 20_000, 0.8, 7));
    /// ```
    pub fn diurnal(
        pool: &[Circuit],
        n: usize,
        mean_interarrival: f64,
        period: u64,
        amplitude: f64,
        seed: u64,
    ) -> Self {
        assert!(n == 0 || !pool.is_empty(), "circuit pool must be non-empty");
        assert!(
            mean_interarrival.is_finite() && mean_interarrival > 0.0,
            "mean inter-arrival must be positive"
        );
        assert!(period > 0, "diurnal period must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        let mut rng = SimRng::new(seed).fork("diurnal").into_std();
        let peak_rate = (1.0 + amplitude) / mean_interarrival;
        let rate_at = |t: f64| {
            (1.0 + amplitude * (std::f64::consts::TAU * t / period as f64).sin())
                / mean_interarrival
        };
        let mut t = 0.0f64;
        let mut jobs = Vec::with_capacity(n);
        while jobs.len() < n {
            // Candidate from the homogeneous peak-rate process …
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / peak_rate;
            // … thinned to the instantaneous rate.
            let accept: f64 = rng.random_range(0.0..1.0);
            if accept < rate_at(t) / peak_rate {
                let i = jobs.len();
                jobs.push(WorkloadJob::new(
                    pool[i % pool.len()].clone(),
                    Tick::new(t as u64),
                ));
            }
        }
        Workload { jobs }
    }

    /// Heavy-tailed job sizes: `n` Poisson arrivals whose qubit counts
    /// are drawn from a Pareto(`alpha`, `min_qubits`) distribution
    /// clamped to `max_qubits`, each materialized by `build` (e.g.
    /// `cloudqc_circuit::generators::ghz`). Small `alpha` (≤ 2) yields
    /// the elephant-and-mice mix that stresses admission policies:
    /// mostly small jobs, a fat tail of huge ones. Deterministic per
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite, the size bounds
    /// are empty or inverted (`min_qubits == 0` or `max_qubits <
    /// min_qubits`), or the mean inter-arrival is not positive and
    /// finite.
    ///
    /// # Example
    ///
    /// ```
    /// use cloudqc_circuit::generators::ghz::ghz;
    /// use cloudqc_core::workload::Workload;
    ///
    /// let w = Workload::pareto_sizes(ghz, 8, 1.5, 4, 40, 1_000.0, 7);
    /// assert_eq!(w.len(), 8);
    /// assert!(w.jobs().iter().all(|j| (4..=40).contains(&j.circuit.num_qubits())));
    /// ```
    pub fn pareto_sizes(
        build: impl Fn(usize) -> Circuit,
        n: usize,
        alpha: f64,
        min_qubits: usize,
        max_qubits: usize,
        mean_interarrival: f64,
        seed: u64,
    ) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Pareto shape must be positive"
        );
        assert!(
            min_qubits > 0 && max_qubits >= min_qubits,
            "size bounds must satisfy 0 < min <= max"
        );
        let mut rng = SimRng::new(seed).fork("pareto").into_std();
        let arrivals = poisson_arrivals(n, mean_interarrival, seed);
        let jobs = arrivals
            .into_iter()
            .map(|arrival| {
                // Inverse-transform Pareto: x = x_m / u^(1/α).
                let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let size = (min_qubits as f64 / u.powf(1.0 / alpha)) as usize;
                WorkloadJob::new(build(size.min(max_qubits)), arrival)
            })
            .collect();
        Workload { jobs }
    }

    /// Assigns tenants round-robin — job `i` belongs to tenant `i %
    /// weights.len()` with that tenant's fair-share weight — the
    /// simplest multi-tenant overlay for exercising
    /// [`crate::runtime::AdmissionPolicy::WeightedFairShare`].
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not positive and
    /// finite.
    pub fn assign_round_robin_tenants(mut self, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "at least one tenant weight required");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "tenant weights must be positive"
        );
        for (i, job) in self.jobs.iter_mut().enumerate() {
            job.tenant = i % weights.len();
            job.weight = weights[job.tenant];
        }
        self
    }

    /// Gives every job the same SLA budget: its deadline becomes
    /// `arrival + sla_ticks`. Consumed by
    /// [`crate::runtime::AdmissionPolicy::DeadlineAware`], which rejects
    /// jobs that can no longer meet their deadline instead of letting
    /// them rot in the queue.
    pub fn with_uniform_sla(mut self, sla_ticks: u64) -> Self {
        for job in &mut self.jobs {
            job.deadline = Some(Tick::new(job.arrival.as_ticks() + sla_ticks));
        }
        self
    }

    /// Shifts every arrival (and any deadline) forward by `base`
    /// ticks. Useful for replaying a workload later on a continuous
    /// service clock: `w.offset_arrivals(svc.now().as_ticks())` lands
    /// the first job no earlier than the service's current time.
    pub fn offset_arrivals(mut self, base: u64) -> Self {
        for job in &mut self.jobs {
            job.arrival = Tick::new(job.arrival.as_ticks() + base);
            if let Some(d) = job.deadline {
                job.deadline = Some(Tick::new(d.as_ticks() + base));
            }
        }
        self
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[WorkloadJob] {
        &self.jobs
    }

    /// Number of distinct tenants (1 for any single-tenant workload
    /// with jobs, 0 when empty).
    pub fn tenant_count(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.tenant + 1)
            .max()
            .unwrap_or_default()
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total computing-qubit demand across all jobs.
    pub fn total_qubits(&self) -> usize {
        self.jobs.iter().map(|j| j.circuit.num_qubits()).sum()
    }

    /// The latest arrival time (`Tick::ZERO` when empty).
    pub fn last_arrival(&self) -> Tick {
        self.jobs
            .iter()
            .map(|j| j.arrival)
            .max()
            .unwrap_or(Tick::ZERO)
    }
}

/// Samples `n` arrival times with exponentially distributed
/// inter-arrival gaps of the given mean (in ticks) — a Poisson arrival
/// process for incoming-job-mode experiments. Deterministic per seed.
///
/// # Panics
///
/// Panics if `mean_interarrival` is not positive and finite.
pub fn poisson_arrivals(n: usize, mean_interarrival: f64, seed: u64) -> Vec<Tick> {
    assert!(
        mean_interarrival.is_finite() && mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = SimRng::new(seed).fork("arrivals").into_std();
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-transform sampling of Exp(1/mean).
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            t += -mean_interarrival * u.ln();
            Tick::new(t as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_circuit::generators::catalog;

    fn pool() -> Vec<Circuit> {
        vec![
            catalog::by_name("vqe_n4").unwrap(),
            catalog::by_name("qft_n13").unwrap(),
        ]
    }

    #[test]
    fn batch_arrives_at_zero() {
        let w = Workload::batch(pool());
        assert_eq!(w.len(), 2);
        assert!(w.jobs().iter().all(|j| j.arrival == Tick::ZERO));
        assert_eq!(w.last_arrival(), Tick::ZERO);
        assert_eq!(w.total_qubits(), 4 + 13);
    }

    #[test]
    fn trace_replays_pairs() {
        let p = pool();
        let w = Workload::trace(vec![
            (p[0].clone(), Tick::new(500)),
            (p[1].clone(), Tick::new(100)),
        ]);
        assert_eq!(w.jobs()[0].arrival, Tick::new(500));
        assert_eq!(w.jobs()[1].arrival, Tick::new(100));
        assert_eq!(w.last_arrival(), Tick::new(500));
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let p = pool();
        let a = Workload::poisson(&p, 20, 300.0, 11);
        let b = Workload::poisson(&p, 20, 300.0, 11);
        assert_eq!(a, b);
        for pair in a.jobs().windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        // Round-robin circuit assignment.
        assert_eq!(a.jobs()[0].circuit.num_qubits(), 4);
        assert_eq!(a.jobs()[1].circuit.num_qubits(), 13);
        assert_eq!(a.jobs()[2].circuit.num_qubits(), 4);
    }

    #[test]
    fn poisson_matches_legacy_arrival_stream() {
        // Workload::poisson must replay the exact arrival process of
        // the standalone sampler, so experiments keep their numbers.
        let p = pool();
        let w = Workload::poisson(&p, 8, 1_000.0, 3);
        let direct = poisson_arrivals(8, 1_000.0, 3);
        let from_workload: Vec<Tick> = w.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(from_workload, direct);
    }

    #[test]
    fn bursty_clusters_arrivals() {
        let p = pool();
        let w = Workload::bursty(&p, 3, 4, 5_000.0, 7);
        assert_eq!(w.len(), 12);
        // Jobs within one burst share an arrival instant.
        for burst in 0..3 {
            let t0 = w.jobs()[burst * 4].arrival;
            for j in 0..4 {
                assert_eq!(w.jobs()[burst * 4 + j].arrival, t0);
            }
        }
        // Bursts are strictly ordered (gap sampling can't collide for
        // this seed).
        assert!(w.jobs()[0].arrival < w.jobs()[4].arrival);
        assert!(w.jobs()[4].arrival < w.jobs()[8].arrival);
        assert_eq!(w, Workload::bursty(&p, 3, 4, 5_000.0, 7));
    }

    #[test]
    fn empty_workloads() {
        let w = Workload::batch(Vec::<Circuit>::new());
        assert!(w.is_empty());
        assert_eq!(Workload::poisson(&[], 0, 100.0, 0).len(), 0);
        assert_eq!(Workload::bursty(&[], 0, 5, 100.0, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn poisson_rejects_empty_pool() {
        Workload::poisson(&[], 3, 100.0, 0);
    }

    #[test]
    fn generators_default_to_single_tenant_no_sla() {
        let w = Workload::poisson(&pool(), 4, 500.0, 3);
        for j in w.jobs() {
            assert_eq!(j.tenant, 0);
            assert_eq!(j.weight, 1.0);
            assert_eq!(j.deadline, None);
        }
        assert_eq!(w.tenant_count(), 1);
        assert_eq!(Workload::batch(Vec::new()).tenant_count(), 0);
    }

    #[test]
    fn diurnal_is_deterministic_sorted_and_modulated() {
        let p = pool();
        let period = 10_000u64;
        let a = Workload::diurnal(&p, 200, 200.0, period, 0.9, 11);
        assert_eq!(a, Workload::diurnal(&p, 200, 200.0, period, 0.9, 11));
        assert_eq!(a.len(), 200);
        for pair in a.jobs().windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        // The first half-period (rate above mean) must receive more
        // arrivals than the second (rate below mean) — the signature of
        // the day/night curve. Count over the first full period only.
        let (mut peak, mut trough) = (0usize, 0usize);
        for j in a.jobs() {
            let phase = j.arrival.as_ticks() % period;
            if j.arrival.as_ticks() < period {
                if phase < period / 2 {
                    peak += 1;
                } else {
                    trough += 1;
                }
            }
        }
        assert!(
            peak > trough,
            "diurnal peak ({peak}) should outdraw trough ({trough})"
        );
    }

    #[test]
    fn pareto_sizes_are_heavy_tailed_and_clamped() {
        use cloudqc_circuit::generators::ghz::ghz;
        let w = Workload::pareto_sizes(ghz, 400, 1.2, 4, 64, 100.0, 9);
        assert_eq!(w.len(), 400);
        let sizes: Vec<usize> = w.jobs().iter().map(|j| j.circuit.num_qubits()).collect();
        assert!(sizes.iter().all(|&s| (4..=64).contains(&s)));
        // Mostly mice …
        let small = sizes.iter().filter(|&&s| s < 12).count();
        assert!(small > sizes.len() / 2, "small {small}/{}", sizes.len());
        // … with at least one elephant at the clamp.
        assert!(sizes.contains(&64), "no clamped elephant");
        assert_eq!(w, Workload::pareto_sizes(ghz, 400, 1.2, 4, 64, 100.0, 9));
    }

    #[test]
    fn round_robin_tenants_and_uniform_sla() {
        let w = Workload::poisson(&pool(), 6, 300.0, 5)
            .assign_round_robin_tenants(&[3.0, 1.0])
            .with_uniform_sla(10_000);
        assert_eq!(w.tenant_count(), 2);
        for (i, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.tenant, i % 2);
            assert_eq!(j.weight, if i % 2 == 0 { 3.0 } else { 1.0 });
            assert_eq!(
                j.deadline,
                Some(Tick::new(j.arrival.as_ticks() + 10_000)),
                "job {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_full_amplitude() {
        Workload::diurnal(&pool(), 2, 100.0, 1_000, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "tenant weight")]
    fn empty_tenant_weights_rejected() {
        let _ = Workload::batch(pool()).assign_round_robin_tenants(&[]);
    }
}
