//! The multi-tenant orchestrator (paper §VI.D).
//!
//! A batch of circuits arrives at `t = 0`. The batch manager orders
//! them; the placement algorithm admits every job the current resources
//! allow (jobs that do not fit wait — later jobs may backfill); admitted
//! jobs execute *concurrently* on the shared executor, competing for
//! communication qubits; when a job finishes, its computing qubits are
//! released and the queue is re-scanned.
//!
//! Job completion time (the metric of Figs. 14–17) is measured from
//! batch arrival, so it includes queueing delay.

use crate::batch::{order_jobs, OrderingPolicy};
use crate::error::PlacementError;
use crate::exec::Executor;
use crate::placement::PlacementAlgorithm;
use crate::schedule::Scheduler;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::Cloud;
use cloudqc_sim::Tick;

/// Per-job outcome of a multi-tenant run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantOutcome {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// When the job arrived (t = 0 in batch mode).
    pub arrived_at: Tick,
    /// When the job was admitted (placement succeeded).
    pub admitted_at: Tick,
    /// When the job finished.
    pub finished_at: Tick,
    /// Completion time from arrival (includes queueing delay), in ticks.
    pub completion_time: Tick,
    /// Remote gates induced by the chosen placement.
    pub remote_gates: usize,
    /// Computing qubits the job occupied while running.
    pub qubits: usize,
}

/// Result of a whole batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiTenantRun {
    /// One outcome per job, in batch order.
    pub outcomes: Vec<TenantOutcome>,
    /// Time the last job finished.
    pub makespan: Tick,
}

impl MultiTenantRun {
    /// Completion times (from arrival) of all jobs, in batch order.
    pub fn completion_times(&self) -> Vec<Tick> {
        self.outcomes.iter().map(|o| o.completion_time).collect()
    }

    /// Mean job completion time in ticks.
    pub fn mean_completion_time(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks() as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Computing-qubit utilization over the run: qubit-ticks actually
    /// held by jobs divided by the cloud's capacity × makespan. This is
    /// the resource-efficiency view of the paper's objective 2 (Eq. 2,
    /// minimizing idle qubits).
    ///
    /// Returns `0.0` for an empty run.
    ///
    /// # Panics
    ///
    /// Panics if `total_computing_capacity == 0`.
    pub fn utilization(&self, total_computing_capacity: usize) -> f64 {
        assert!(total_computing_capacity > 0, "capacity must be positive");
        if self.outcomes.is_empty() || self.makespan == Tick::ZERO {
            return 0.0;
        }
        let held: f64 = self
            .outcomes
            .iter()
            .map(|o| o.qubits as f64 * (o.finished_at - o.admitted_at) as f64)
            .sum();
        held / (total_computing_capacity as f64 * self.makespan.as_ticks() as f64)
    }
}

/// Runs one batch of circuits through the full CloudQC pipeline.
///
/// # Errors
///
/// [`PlacementError`] if some job can never be placed even on an idle
/// cloud (it would otherwise wait forever).
///
/// # Example
///
/// ```
/// use cloudqc_circuit::generators::catalog;
/// use cloudqc_cloud::CloudBuilder;
/// use cloudqc_core::batch::OrderingPolicy;
/// use cloudqc_core::placement::CloudQcPlacement;
/// use cloudqc_core::schedule::CloudQcScheduler;
/// use cloudqc_core::tenant::run_multi_tenant;
///
/// let cloud = CloudBuilder::paper_default(1).build();
/// let batch = vec![
///     catalog::by_name("vqe_n4").unwrap(),
///     catalog::by_name("qft_n29").unwrap(),
/// ];
/// let run = run_multi_tenant(
///     &batch,
///     &cloud,
///     &CloudQcPlacement::default(),
///     &CloudQcScheduler,
///     OrderingPolicy::default(),
///     7,
/// ).unwrap();
/// assert_eq!(run.outcomes.len(), 2);
/// ```
pub fn run_multi_tenant(
    circuits: &[Circuit],
    cloud: &Cloud,
    placement: &dyn PlacementAlgorithm,
    scheduler: &dyn Scheduler,
    ordering: OrderingPolicy,
    seed: u64,
) -> Result<MultiTenantRun, PlacementError> {
    let order = order_jobs(circuits, ordering);
    let mut waiting: Vec<usize> = order; // batch indices, in processing order
    let mut status = cloud.status();
    let mut exec = Executor::new(cloud, scheduler, seed);

    // exec job id -> (batch index, demand vector)
    let mut admitted: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut outcomes: Vec<Option<TenantOutcome>> = vec![None; circuits.len()];

    // Admits every waiting job the current resources allow (in order,
    // with backfill). Returns how many were admitted.
    let admit = |waiting: &mut Vec<usize>,
                 status: &mut cloudqc_cloud::CloudStatus,
                 exec: &mut Executor,
                 admitted: &mut Vec<(usize, Vec<usize>)>|
     -> Result<usize, PlacementError> {
        let mut n_admitted = 0;
        let mut i = 0;
        while i < waiting.len() {
            let batch_idx = waiting[i];
            let circuit = &circuits[batch_idx];
            match placement.place(circuit, cloud, status, seed ^ (batch_idx as u64) << 17) {
                Ok(p) => {
                    let demand = p.qpu_demand(cloud.qpu_count());
                    status
                        .allocate_all_computing(&demand)
                        .expect("placement.fits was checked by the algorithm");
                    let exec_id = exec.add_job(circuit, &p);
                    debug_assert_eq!(exec_id, admitted.len());
                    admitted.push((batch_idx, demand));
                    waiting.remove(i);
                    n_admitted += 1;
                }
                Err(PlacementError::InsufficientCapacity { required, .. })
                    if required > cloud.total_computing_capacity() =>
                {
                    // Impossible even on an idle cloud: fail the batch.
                    return Err(PlacementError::InsufficientCapacity {
                        required,
                        available: cloud.total_computing_capacity(),
                    });
                }
                Err(_) => {
                    i += 1; // cannot fit now: wait, let later jobs backfill
                }
            }
        }
        Ok(n_admitted)
    };

    admit(&mut waiting, &mut status, &mut exec, &mut admitted)?;

    while exec.unfinished_jobs() > 0 || !waiting.is_empty() {
        let finished = exec.run_until_next_completion();
        if finished.is_empty() {
            // Executor idle but jobs still wait: they must be placeable
            // on the (now fully free) cloud or the batch cannot finish.
            if !waiting.is_empty() {
                return Err(PlacementError::NoFeasiblePlacement);
            }
            break;
        }
        for exec_id in finished {
            let (batch_idx, demand) = &admitted[exec_id];
            status.release_all_computing(demand);
            let result = exec.job_result(exec_id).expect("job finished");
            outcomes[*batch_idx] = Some(TenantOutcome {
                job: *batch_idx,
                arrived_at: Tick::ZERO,
                admitted_at: result.started_at,
                finished_at: result.finished_at,
                completion_time: Tick::new(result.finished_at.as_ticks()),
                remote_gates: result.remote_gates,
                qubits: demand.iter().sum(),
            });
        }
        admit(&mut waiting, &mut status, &mut exec, &mut admitted)?;
    }

    let outcomes: Vec<TenantOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job completed"))
        .collect();
    let makespan = outcomes
        .iter()
        .map(|o| o.finished_at)
        .max()
        .unwrap_or(Tick::ZERO);
    Ok(MultiTenantRun { outcomes, makespan })
}

/// Runs the *incoming job mode* (paper §V.B): jobs arrive one after
/// another and are processed first-in-first-out. A job that does not
/// fit waits; arrivals behind it may backfill once earlier completions
/// free resources. Completion time is measured from each job's own
/// arrival.
///
/// `jobs` pairs each circuit with its arrival time (any order; sorted
/// internally).
///
/// # Errors
///
/// [`PlacementError`] if some job can never be placed even on an idle
/// cloud.
///
/// # Example
///
/// ```
/// use cloudqc_circuit::generators::catalog;
/// use cloudqc_cloud::CloudBuilder;
/// use cloudqc_core::placement::CloudQcPlacement;
/// use cloudqc_core::schedule::CloudQcScheduler;
/// use cloudqc_core::tenant::{poisson_arrivals, run_incoming};
/// use cloudqc_sim::Tick;
///
/// let cloud = CloudBuilder::paper_default(1).build();
/// let arrivals = poisson_arrivals(3, 10_000.0, 7);
/// let jobs: Vec<_> = arrivals
///     .into_iter()
///     .map(|t| (catalog::by_name("qugan_n39").unwrap(), t))
///     .collect();
/// let run = run_incoming(&jobs, &cloud, &CloudQcPlacement::default(),
///                        &CloudQcScheduler, 7).unwrap();
/// assert_eq!(run.outcomes.len(), 3);
/// ```
pub fn run_incoming(
    jobs: &[(Circuit, Tick)],
    cloud: &Cloud,
    placement: &dyn PlacementAlgorithm,
    scheduler: &dyn Scheduler,
    seed: u64,
) -> Result<MultiTenantRun, PlacementError> {
    // FIFO by arrival time (stable on ties).
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| jobs[i].1);

    let mut status = cloud.status();
    let mut exec = Executor::new(cloud, scheduler, seed);
    let mut waiting: Vec<usize> = Vec::new(); // arrived, unplaced (FIFO)
    let mut admitted: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut outcomes: Vec<Option<TenantOutcome>> = vec![None; jobs.len()];
    let mut next_arrival = 0usize;

    let record = |exec: &Executor,
                  admitted: &[(usize, Vec<usize>)],
                  status: &mut cloudqc_cloud::CloudStatus,
                  outcomes: &mut Vec<Option<TenantOutcome>>,
                  finished: Vec<usize>| {
        for exec_id in finished {
            let (job_idx, demand) = &admitted[exec_id];
            status.release_all_computing(demand);
            let result = exec.job_result(exec_id).expect("job finished");
            let arrived = jobs[*job_idx].1;
            outcomes[*job_idx] = Some(TenantOutcome {
                job: *job_idx,
                arrived_at: arrived,
                admitted_at: result.started_at,
                finished_at: result.finished_at,
                completion_time: Tick::new(result.finished_at - arrived),
                remote_gates: result.remote_gates,
                qubits: demand.iter().sum(),
            });
        }
    };

    loop {
        // Admit every waiting job that fits, FIFO with backfill.
        let mut i = 0;
        while i < waiting.len() {
            let job_idx = waiting[i];
            match placement.place(
                &jobs[job_idx].0,
                cloud,
                &status,
                seed ^ (job_idx as u64) << 17,
            ) {
                Ok(p) => {
                    let demand = p.qpu_demand(cloud.qpu_count());
                    status
                        .allocate_all_computing(&demand)
                        .expect("algorithm checked fit");
                    let exec_id = exec.add_job(&jobs[job_idx].0, &p);
                    debug_assert_eq!(exec_id, admitted.len());
                    admitted.push((job_idx, demand));
                    waiting.remove(i);
                }
                Err(PlacementError::InsufficientCapacity { required, .. })
                    if required > cloud.total_computing_capacity() =>
                {
                    return Err(PlacementError::InsufficientCapacity {
                        required,
                        available: cloud.total_computing_capacity(),
                    });
                }
                Err(_) => i += 1,
            }
        }

        // Advance: to the next arrival if one is pending, else to the
        // next completion.
        if next_arrival < order.len() {
            let arrival_time = jobs[order[next_arrival]].1;
            let finished = exec.run_until(arrival_time);
            record(&exec, &admitted, &mut status, &mut outcomes, finished);
            // Enqueue every job arriving at this instant.
            while next_arrival < order.len() && jobs[order[next_arrival]].1 <= arrival_time {
                waiting.push(order[next_arrival]);
                next_arrival += 1;
            }
        } else if exec.unfinished_jobs() > 0 {
            let finished = exec.run_until_next_completion();
            if finished.is_empty() && !waiting.is_empty() {
                return Err(PlacementError::NoFeasiblePlacement);
            }
            record(&exec, &admitted, &mut status, &mut outcomes, finished);
        } else if waiting.is_empty() {
            break;
        } else {
            // Idle executor, no arrivals left, jobs still waiting: they
            // must fit the (fully free) cloud or never will.
            return Err(PlacementError::NoFeasiblePlacement);
        }
    }

    let outcomes: Vec<TenantOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job completed"))
        .collect();
    let makespan = outcomes
        .iter()
        .map(|o| o.finished_at)
        .max()
        .unwrap_or(Tick::ZERO);
    Ok(MultiTenantRun { outcomes, makespan })
}

/// Samples `n` arrival times with exponentially distributed
/// inter-arrival gaps of the given mean (in ticks) — a Poisson arrival
/// process for incoming-job-mode experiments. Deterministic per seed.
///
/// # Panics
///
/// Panics if `mean_interarrival` is not positive and finite.
pub fn poisson_arrivals(n: usize, mean_interarrival: f64, seed: u64) -> Vec<Tick> {
    use rand::RngExt;
    assert!(
        mean_interarrival.is_finite() && mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = cloudqc_sim::SimRng::new(seed).fork("arrivals").into_std();
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-transform sampling of Exp(1/mean).
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            t += -mean_interarrival * u.ln();
            Tick::new(t as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{CloudQcBfsPlacement, CloudQcPlacement};
    use crate::schedule::CloudQcScheduler;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    fn small_batch() -> Vec<Circuit> {
        vec![
            catalog::by_name("vqe_n4").unwrap(),
            catalog::by_name("qft_n29").unwrap(),
            catalog::by_name("ghz_n40").unwrap(),
        ]
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let cloud = CloudBuilder::paper_default(2).build();
        let run = run_multi_tenant(
            &small_batch(),
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            3,
        )
        .unwrap();
        assert_eq!(run.outcomes.len(), 3);
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.job, i);
            assert!(o.finished_at >= o.admitted_at);
            assert!(o.completion_time.as_ticks() > 0);
        }
        assert_eq!(
            run.makespan,
            run.outcomes.iter().map(|o| o.finished_at).max().unwrap()
        );
    }

    #[test]
    fn contention_forces_queueing() {
        // A cloud too small for both jobs at once: the second must wait
        // for the first to release qubits.
        let cloud = CloudBuilder::new(3)
            .computing_qubits(10)
            .line_topology()
            .build();
        let batch = vec![
            catalog::by_name("ghz_n25").unwrap(),
            catalog::by_name("ghz_n25").unwrap(),
        ];
        let run = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::Fifo,
            1,
        )
        .unwrap();
        let (a, b) = (&run.outcomes[0], &run.outcomes[1]);
        let (first, second) = if a.admitted_at <= b.admitted_at {
            (a, b)
        } else {
            (b, a)
        };
        assert_eq!(first.admitted_at, Tick::ZERO);
        assert!(second.admitted_at >= first.finished_at);
    }

    #[test]
    fn impossible_job_is_an_error() {
        let cloud = CloudBuilder::new(2).computing_qubits(5).build();
        let batch = vec![catalog::by_name("ghz_n40").unwrap()];
        let err = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
    }

    #[test]
    fn deterministic_for_seed() {
        let cloud = CloudBuilder::paper_default(5).build();
        let batch = small_batch();
        let run = |s| {
            run_multi_tenant(
                &batch,
                &cloud,
                &CloudQcBfsPlacement::default(),
                &CloudQcScheduler,
                OrderingPolicy::default(),
                s,
            )
            .unwrap()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn utilization_is_a_sane_fraction() {
        let cloud = CloudBuilder::paper_default(13).build();
        let batch = small_batch();
        let run = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            4,
        )
        .unwrap();
        let u = run.utilization(cloud.total_computing_capacity());
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        // Qubit counts recorded per job.
        for (o, c) in run.outcomes.iter().zip(&batch) {
            assert_eq!(o.qubits, c.num_qubits());
        }
    }

    #[test]
    fn incoming_mode_respects_arrivals() {
        let cloud = CloudBuilder::paper_default(11).build();
        let jobs = vec![
            (catalog::by_name("qugan_n39").unwrap(), Tick::new(0)),
            (catalog::by_name("ising_n34").unwrap(), Tick::new(5_000)),
            (catalog::by_name("bv_n70").unwrap(), Tick::new(9_000)),
        ];
        let run = run_incoming(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            3,
        )
        .unwrap();
        assert_eq!(run.outcomes.len(), 3);
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.arrived_at, jobs[i].1);
            assert!(
                o.admitted_at >= o.arrived_at,
                "job {i} admitted before arrival"
            );
            assert_eq!(
                o.completion_time.as_ticks(),
                o.finished_at - o.arrived_at,
                "job {i} JCT from its own arrival"
            );
        }
    }

    #[test]
    fn incoming_mode_queues_under_contention() {
        // Jobs arrive faster than the tiny cloud can drain them.
        let cloud = CloudBuilder::new(3)
            .computing_qubits(10)
            .line_topology()
            .build();
        let circuit = catalog::by_name("ghz_n25").unwrap();
        let jobs: Vec<_> = (0..3)
            .map(|i| (circuit.clone(), Tick::new(i * 10)))
            .collect();
        let run = run_incoming(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            5,
        )
        .unwrap();
        // 25-qubit jobs on a 30-qubit cloud serialize: each next job is
        // admitted no earlier than the previous one finishes.
        let mut by_arrival = run.outcomes.clone();
        by_arrival.sort_by_key(|o| o.arrived_at);
        for pair in by_arrival.windows(2) {
            assert!(pair[1].admitted_at >= pair[0].finished_at);
        }
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let a = poisson_arrivals(50, 100.0, 9);
        let b = poisson_arrivals(50, 100.0, 9);
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        // Mean inter-arrival is roughly the requested mean.
        let total = a.last().unwrap().as_ticks() as f64;
        let mean = total / 50.0;
        assert!((mean - 100.0).abs() < 50.0, "mean gap {mean}");
    }

    #[test]
    fn fifo_and_metric_can_differ() {
        let cloud = CloudBuilder::new(4)
            .computing_qubits(15)
            .ring_topology()
            .build();
        // One dense job and two light ones; under contention the
        // admission order (hence at least admission times) differs.
        let batch = vec![
            catalog::by_name("ghz_n30").unwrap(),
            catalog::by_name("qft_n29").unwrap(),
            catalog::by_name("ghz_n30").unwrap(),
        ];
        let fifo = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::Fifo,
            2,
        )
        .unwrap();
        let metric = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            2,
        )
        .unwrap();
        assert_eq!(fifo.outcomes.len(), metric.outcomes.len());
        // The dense qft job leads under the metric ordering.
        assert_eq!(metric.outcomes[1].admitted_at, Tick::ZERO);
    }
}
