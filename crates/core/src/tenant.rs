//! The multi-tenant entry points (paper §VI.D / §V.B), as thin
//! wrappers over the unified runtime.
//!
//! Both execution modes run the same orchestration loop
//! ([`crate::runtime::Orchestrator`]): jobs arrive (all at `t = 0` in
//! batch mode), queue until the placement algorithm admits them, and
//! execute concurrently on the shared executor, competing for
//! communication qubits. When a job finishes, its computing qubits are
//! released and the queue is re-scanned.
//!
//! Job completion time (the metric of Figs. 14–17) is measured from
//! each job's arrival, so it includes queueing delay.

use crate::batch::OrderingPolicy;
use crate::error::PlacementError;
use crate::placement::PlacementAlgorithm;
use crate::runtime::{AdmissionPolicy, JobRecord, Orchestrator, RunReport};
use crate::schedule::Scheduler;
use crate::workload::Workload;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::Cloud;
use cloudqc_sim::Tick;

pub use crate::workload::poisson_arrivals;

/// Per-job outcome of a multi-tenant run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantOutcome {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// When the job arrived (t = 0 in batch mode).
    pub arrived_at: Tick,
    /// When the job was admitted (placement succeeded).
    pub admitted_at: Tick,
    /// When the job finished.
    pub finished_at: Tick,
    /// Completion time from arrival (includes queueing delay), in ticks.
    pub completion_time: Tick,
    /// Remote gates induced by the chosen placement.
    pub remote_gates: usize,
    /// Computing qubits the job occupied while running.
    pub qubits: usize,
}

impl From<&JobRecord> for TenantOutcome {
    fn from(r: &JobRecord) -> Self {
        TenantOutcome {
            job: r.job,
            arrived_at: r.arrived_at,
            admitted_at: r.admitted_at,
            finished_at: r.finished_at,
            completion_time: r.completion_time,
            remote_gates: r.remote_gates,
            qubits: r.qubits,
        }
    }
}

/// Result of a whole batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiTenantRun {
    /// One outcome per job, in batch order.
    pub outcomes: Vec<TenantOutcome>,
    /// Time the last job finished.
    pub makespan: Tick,
}

impl MultiTenantRun {
    /// Completion times (from arrival) of all jobs, in batch order.
    pub fn completion_times(&self) -> Vec<Tick> {
        self.outcomes.iter().map(|o| o.completion_time).collect()
    }

    /// Mean job completion time in ticks.
    pub fn mean_completion_time(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks() as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Computing-qubit utilization over the run: qubit-ticks actually
    /// held by jobs divided by the cloud's capacity × makespan. This is
    /// the resource-efficiency view of the paper's objective 2 (Eq. 2,
    /// minimizing idle qubits).
    ///
    /// Returns `0.0` for an empty run.
    ///
    /// # Panics
    ///
    /// Panics if `total_computing_capacity == 0`.
    pub fn utilization(&self, total_computing_capacity: usize) -> f64 {
        assert!(total_computing_capacity > 0, "capacity must be positive");
        if self.outcomes.is_empty() || self.makespan == Tick::ZERO {
            return 0.0;
        }
        let held: f64 = self
            .outcomes
            .iter()
            .map(|o| o.qubits as f64 * (o.finished_at - o.admitted_at) as f64)
            .sum();
        held / (total_computing_capacity as f64 * self.makespan.as_ticks() as f64)
    }
}

/// Converts a runtime report into the legacy batch result shape.
///
/// # Panics
///
/// Panics if the runtime rejected a job (the legacy entry points
/// promise every submitted job completes, as their executor-level
/// predecessors did).
fn into_multi_tenant(report: RunReport) -> MultiTenantRun {
    if let Some((job, err)) = report.rejected.first() {
        panic!("job {job}: {err}");
    }
    MultiTenantRun {
        outcomes: report.outcomes.iter().map(TenantOutcome::from).collect(),
        makespan: report.makespan,
    }
}

/// Runs one batch of circuits through the full CloudQC pipeline.
///
/// Thin wrapper over the runtime: batch workload (everything arrives
/// at `t = 0`) with priority-aware ([`OrderingPolicy::Metric`], the
/// Eq. 11 batch manager) or FIFO-with-backfill admission.
///
/// # Errors
///
/// [`PlacementError`] if some job can never be placed even on an idle
/// cloud (it would otherwise wait forever).
///
/// # Panics
///
/// Panics if a job's placement can never execute (communication
/// starvation); use [`Orchestrator`] directly to reject such jobs
/// gracefully.
///
/// # Example
///
/// ```
/// use cloudqc_circuit::generators::catalog;
/// use cloudqc_cloud::CloudBuilder;
/// use cloudqc_core::batch::OrderingPolicy;
/// use cloudqc_core::placement::CloudQcPlacement;
/// use cloudqc_core::schedule::CloudQcScheduler;
/// use cloudqc_core::tenant::run_multi_tenant;
///
/// let cloud = CloudBuilder::paper_default(1).build();
/// let batch = vec![
///     catalog::by_name("vqe_n4").unwrap(),
///     catalog::by_name("qft_n29").unwrap(),
/// ];
/// let run = run_multi_tenant(
///     &batch,
///     &cloud,
///     &CloudQcPlacement::default(),
///     &CloudQcScheduler,
///     OrderingPolicy::default(),
///     7,
/// ).unwrap();
/// assert_eq!(run.outcomes.len(), 2);
/// ```
pub fn run_multi_tenant(
    circuits: &[Circuit],
    cloud: &Cloud,
    placement: &dyn PlacementAlgorithm,
    scheduler: &dyn Scheduler,
    ordering: OrderingPolicy,
    seed: u64,
) -> Result<MultiTenantRun, PlacementError> {
    let admission = match ordering {
        OrderingPolicy::Metric(weights) => AdmissionPolicy::PriorityBackfill(weights),
        OrderingPolicy::Fifo => AdmissionPolicy::Backfill,
    };
    let report = Orchestrator::new(cloud, placement, scheduler, seed)
        .with_admission(admission)
        .run(&Workload::batch(circuits.to_vec()))?;
    Ok(into_multi_tenant(report))
}

/// Runs the *incoming job mode* (paper §V.B): jobs arrive one after
/// another and are processed first-in-first-out with backfill. A job
/// that does not fit waits; arrivals behind it may backfill once
/// earlier completions free resources. Completion time is measured
/// from each job's own arrival.
///
/// Thin wrapper over the runtime: trace workload + backfill admission.
///
/// `jobs` pairs each circuit with its arrival time (any order; sorted
/// internally).
///
/// # Errors
///
/// [`PlacementError`] if some job can never be placed even on an idle
/// cloud.
///
/// # Panics
///
/// Panics if a job's placement can never execute (communication
/// starvation); use [`Orchestrator`] directly to reject such jobs
/// gracefully.
///
/// # Example
///
/// ```
/// use cloudqc_circuit::generators::catalog;
/// use cloudqc_cloud::CloudBuilder;
/// use cloudqc_core::placement::CloudQcPlacement;
/// use cloudqc_core::schedule::CloudQcScheduler;
/// use cloudqc_core::tenant::{poisson_arrivals, run_incoming};
/// use cloudqc_sim::Tick;
///
/// let cloud = CloudBuilder::paper_default(1).build();
/// let arrivals = poisson_arrivals(3, 10_000.0, 7);
/// let jobs: Vec<_> = arrivals
///     .into_iter()
///     .map(|t| (catalog::by_name("qugan_n39").unwrap(), t))
///     .collect();
/// let run = run_incoming(&jobs, &cloud, &CloudQcPlacement::default(),
///                        &CloudQcScheduler, 7).unwrap();
/// assert_eq!(run.outcomes.len(), 3);
/// ```
pub fn run_incoming(
    jobs: &[(Circuit, Tick)],
    cloud: &Cloud,
    placement: &dyn PlacementAlgorithm,
    scheduler: &dyn Scheduler,
    seed: u64,
) -> Result<MultiTenantRun, PlacementError> {
    let report = Orchestrator::new(cloud, placement, scheduler, seed)
        .with_admission(AdmissionPolicy::Backfill)
        .run(&Workload::trace(jobs.iter().cloned()))?;
    Ok(into_multi_tenant(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{CloudQcBfsPlacement, CloudQcPlacement};
    use crate::schedule::CloudQcScheduler;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    fn small_batch() -> Vec<Circuit> {
        vec![
            catalog::by_name("vqe_n4").unwrap(),
            catalog::by_name("qft_n29").unwrap(),
            catalog::by_name("ghz_n40").unwrap(),
        ]
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let cloud = CloudBuilder::paper_default(2).build();
        let run = run_multi_tenant(
            &small_batch(),
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            3,
        )
        .unwrap();
        assert_eq!(run.outcomes.len(), 3);
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.job, i);
            assert!(o.finished_at >= o.admitted_at);
            assert!(o.completion_time.as_ticks() > 0);
        }
        assert_eq!(
            run.makespan,
            run.outcomes.iter().map(|o| o.finished_at).max().unwrap()
        );
    }

    #[test]
    fn contention_forces_queueing() {
        // A cloud too small for both jobs at once: the second must wait
        // for the first to release qubits.
        let cloud = CloudBuilder::new(3)
            .computing_qubits(10)
            .line_topology()
            .build();
        let batch = vec![
            catalog::by_name("ghz_n25").unwrap(),
            catalog::by_name("ghz_n25").unwrap(),
        ];
        let run = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::Fifo,
            1,
        )
        .unwrap();
        let (a, b) = (&run.outcomes[0], &run.outcomes[1]);
        let (first, second) = if a.admitted_at <= b.admitted_at {
            (a, b)
        } else {
            (b, a)
        };
        assert_eq!(first.admitted_at, Tick::ZERO);
        assert!(second.admitted_at >= first.finished_at);
    }

    #[test]
    fn impossible_job_is_an_error() {
        let cloud = CloudBuilder::new(2).computing_qubits(5).build();
        let batch = vec![catalog::by_name("ghz_n40").unwrap()];
        let err = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
    }

    #[test]
    fn deterministic_for_seed() {
        let cloud = CloudBuilder::paper_default(5).build();
        let batch = small_batch();
        let run = |s| {
            run_multi_tenant(
                &batch,
                &cloud,
                &CloudQcBfsPlacement::default(),
                &CloudQcScheduler,
                OrderingPolicy::default(),
                s,
            )
            .unwrap()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn utilization_is_a_sane_fraction() {
        let cloud = CloudBuilder::paper_default(13).build();
        let batch = small_batch();
        let run = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            4,
        )
        .unwrap();
        let u = run.utilization(cloud.total_computing_capacity());
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        // Qubit counts recorded per job.
        for (o, c) in run.outcomes.iter().zip(&batch) {
            assert_eq!(o.qubits, c.num_qubits());
        }
    }

    #[test]
    fn incoming_mode_respects_arrivals() {
        let cloud = CloudBuilder::paper_default(11).build();
        let jobs = vec![
            (catalog::by_name("qugan_n39").unwrap(), Tick::new(0)),
            (catalog::by_name("ising_n34").unwrap(), Tick::new(5_000)),
            (catalog::by_name("bv_n70").unwrap(), Tick::new(9_000)),
        ];
        let run = run_incoming(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            3,
        )
        .unwrap();
        assert_eq!(run.outcomes.len(), 3);
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.arrived_at, jobs[i].1);
            assert!(
                o.admitted_at >= o.arrived_at,
                "job {i} admitted before arrival"
            );
            assert_eq!(
                o.completion_time.as_ticks(),
                o.finished_at - o.arrived_at,
                "job {i} JCT from its own arrival"
            );
        }
    }

    #[test]
    fn incoming_mode_queues_under_contention() {
        // Jobs arrive faster than the tiny cloud can drain them.
        let cloud = CloudBuilder::new(3)
            .computing_qubits(10)
            .line_topology()
            .build();
        let circuit = catalog::by_name("ghz_n25").unwrap();
        let jobs: Vec<_> = (0..3)
            .map(|i| (circuit.clone(), Tick::new(i * 10)))
            .collect();
        let run = run_incoming(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            5,
        )
        .unwrap();
        // 25-qubit jobs on a 30-qubit cloud serialize: each next job is
        // admitted no earlier than the previous one finishes.
        let mut by_arrival = run.outcomes.clone();
        by_arrival.sort_by_key(|o| o.arrived_at);
        for pair in by_arrival.windows(2) {
            assert!(pair[1].admitted_at >= pair[0].finished_at);
        }
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let a = poisson_arrivals(50, 100.0, 9);
        let b = poisson_arrivals(50, 100.0, 9);
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        // Mean inter-arrival is roughly the requested mean.
        let total = a.last().unwrap().as_ticks() as f64;
        let mean = total / 50.0;
        assert!((mean - 100.0).abs() < 50.0, "mean gap {mean}");
    }

    #[test]
    fn fifo_and_metric_can_differ() {
        let cloud = CloudBuilder::new(4)
            .computing_qubits(15)
            .ring_topology()
            .build();
        // One dense job and two light ones; under contention the
        // admission order (hence at least admission times) differs.
        let batch = vec![
            catalog::by_name("ghz_n30").unwrap(),
            catalog::by_name("qft_n29").unwrap(),
            catalog::by_name("ghz_n30").unwrap(),
        ];
        let fifo = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::Fifo,
            2,
        )
        .unwrap();
        let metric = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            2,
        )
        .unwrap();
        assert_eq!(fifo.outcomes.len(), metric.outcomes.len());
        // The dense qft job leads under the metric ordering.
        assert_eq!(metric.outcomes[1].admitted_at, Tick::ZERO);
    }
}
