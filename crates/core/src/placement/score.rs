//! The placement scoring function `S = α/T + β/C` (paper §V.B,
//! "Circuit placement summary").

/// Scores a candidate placement from its estimated execution time `T`
/// (ticks) and communication cost `C`. Higher is better.
///
/// A zero cost (single-QPU placement) or zero time contributes the
/// term's weight at the `1.0` floor, keeping scores finite while still
/// strictly preferring cheaper placements.
///
/// # Example
///
/// ```
/// use cloudqc_core::placement::score::placement_score;
///
/// let fast_cheap = placement_score(100.0, 10.0, 1.0, 1.0);
/// let slow_dear = placement_score(1000.0, 100.0, 1.0, 1.0);
/// assert!(fast_cheap > slow_dear);
/// ```
pub fn placement_score(time: f64, cost: f64, alpha: f64, beta: f64) -> f64 {
    alpha / time.max(1.0) + beta / cost.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_time_scores_higher() {
        assert!(placement_score(10.0, 50.0, 1.0, 1.0) > placement_score(20.0, 50.0, 1.0, 1.0));
    }

    #[test]
    fn lower_cost_scores_higher() {
        assert!(placement_score(10.0, 5.0, 1.0, 1.0) > placement_score(10.0, 50.0, 1.0, 1.0));
    }

    #[test]
    fn zero_cost_is_finite_and_best() {
        let s = placement_score(10.0, 0.0, 1.0, 1.0);
        assert!(s.is_finite());
        assert!(s >= placement_score(10.0, 1.5, 1.0, 1.0));
    }

    #[test]
    fn weights_trade_off() {
        // With β = 0 only time matters.
        let a = placement_score(10.0, 999.0, 1.0, 0.0);
        let b = placement_score(10.0, 1.0, 1.0, 0.0);
        assert_eq!(a, b);
    }
}
