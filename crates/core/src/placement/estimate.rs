//! Execution time estimation for placement scoring.
//!
//! Algorithm 1 scores each candidate placement by `S = α/T + β/C` where
//! `T` is "the estimated running time of the quantum circuit". We
//! estimate `T` as the weighted critical path of the gate dependency
//! DAG: local gates cost their Table I latency; remote gates
//! additionally pay the *expected* EPR generation latency given a fair
//! share of communication qubits.

use super::Placement;
use cloudqc_circuit::dag::gate_dag;
use cloudqc_circuit::{Circuit, GateKind};
use cloudqc_cloud::Cloud;

/// Estimated execution time of `circuit` under `placement`, in ticks.
///
/// Remote gates are costed at
/// `hops · E[rounds | fair pairs] · t_ep + t_2q + t_measure + t_1q`,
/// with the fair share being half the smaller endpoint's communication
/// capacity (at least 1).
///
/// # Panics
///
/// Panics if the placement is narrower than the circuit.
pub fn estimate_execution_time(circuit: &Circuit, placement: &Placement, cloud: &Cloud) -> f64 {
    assert!(
        placement.num_qubits() >= circuit.num_qubits(),
        "placement narrower than circuit"
    );
    let latency = cloud.latency();
    let dag = gate_dag(circuit);
    let costs: Vec<f64> = circuit
        .gates()
        .iter()
        .map(|gate| match gate.qubit_pair() {
            Some((a, b)) => {
                let (pa, pb) = (placement.qpu_of(a.index()), placement.qpu_of(b.index()));
                if pa == pb {
                    latency.two_qubit() as f64
                } else {
                    let hops = cloud.distance_or_max(pa, pb) as f64;
                    let fair_pairs = fair_share(cloud, pa, pb);
                    let rounds = cloud.epr().expected_rounds(fair_pairs);
                    hops * rounds * latency.epr_attempt() as f64
                        + latency.remote_gate_completion() as f64
                }
            }
            None => {
                if gate.kind() == GateKind::Measure {
                    latency.measure() as f64
                } else {
                    latency.single_qubit() as f64
                }
            }
        })
        .collect();
    dag.weighted_critical_path(&costs)
}

/// Fair communication-qubit share assumption: half the smaller
/// endpoint's capacity, at least one pair.
fn fair_share(cloud: &Cloud, a: cloudqc_cloud::QpuId, b: cloudqc_cloud::QpuId) -> usize {
    let cap = cloud
        .qpu(a)
        .communication_qubits()
        .min(cloud.qpu(b).communication_qubits());
    (cap / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_cloud::{CloudBuilder, QpuId};

    fn cloud() -> Cloud {
        CloudBuilder::new(3).line_topology().build()
    }

    fn two_gate_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c
    }

    #[test]
    fn local_placement_is_cheap() {
        let c = two_gate_circuit();
        let local = Placement::new(vec![QpuId::new(0); 2]);
        let t = estimate_execution_time(&c, &local, &cloud());
        // h (1) + cx (10).
        assert_eq!(t, 11.0);
    }

    #[test]
    fn remote_placement_is_much_more_expensive() {
        let c = two_gate_circuit();
        let cloud = cloud();
        let local = Placement::new(vec![QpuId::new(0); 2]);
        let remote = Placement::new(vec![QpuId::new(0), QpuId::new(1)]);
        let t_local = estimate_execution_time(&c, &local, &cloud);
        let t_remote = estimate_execution_time(&c, &remote, &cloud);
        assert!(
            t_remote > 10.0 * t_local,
            "local {t_local}, remote {t_remote}"
        );
    }

    #[test]
    fn distance_increases_estimate() {
        let c = two_gate_circuit();
        let cloud = cloud();
        let near = Placement::new(vec![QpuId::new(0), QpuId::new(1)]);
        let far = Placement::new(vec![QpuId::new(0), QpuId::new(2)]);
        assert!(
            estimate_execution_time(&c, &far, &cloud) > estimate_execution_time(&c, &near, &cloud)
        );
    }

    #[test]
    fn parallel_gates_do_not_stack() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3); // independent: same critical path as one gate
        let p = Placement::new(vec![QpuId::new(0); 4]);
        assert_eq!(estimate_execution_time(&c, &p, &cloud()), 10.0);
    }

    #[test]
    fn measurement_latency_counted() {
        let mut c = Circuit::new(1);
        c.measure(0);
        let p = Placement::new(vec![QpuId::new(0)]);
        assert_eq!(estimate_execution_time(&c, &p, &cloud()), 50.0);
    }
}
