//! Placement memoization for the runtime's admission hot path.
//!
//! Profiling the orchestrator under admission churn shows placement as
//! the dominant cost: every pass over the waiting queue re-runs the
//! full Algorithm 1 pipeline (partition sweep × QPU-set search ×
//! scoring) per job, even when nothing about the problem changed since
//! the last attempt — the typical case for a head-of-line job retried
//! on every loop iteration while the cloud drains.
//!
//! [`PlacementCache`] memoizes [`PlacementAlgorithm::place`] outcomes —
//! successes *and* failures (the failure entries are what break the
//! retry loop) — for one fixed (algorithm instance, cloud) pair (the
//! orchestrator builds one cache per run; debug builds enforce the
//! binding), keyed by a signature of everything else the algorithm
//! can observe:
//!
//! * the circuit's structural [`Fingerprint`] (name-independent, so
//!   identical circuits submitted by different tenants share entries),
//! * the cloud's free-computing-capacity vector, quantized by
//!   [`PlacementCache::quantum`] (bucket size in qubits), and
//! * the placement seed.
//!
//! With the default quantum of 1 the signature captures the exact free
//! vector, so a hit replays a computation with identical inputs and the
//! cached result is *provably* what the algorithm would return —
//! cached and uncached runs produce byte-identical schedules (pinned in
//! `tests/runtime_golden.rs`). Coarser quanta trade fidelity for hit
//! rate: capacity drifts within a bucket reuse the old result, which
//! can shift schedules (never correctness — see below) and is why
//! coarse quanta are opt-in.
//!
//! The cache is **bounded**: entries are held in least-recently-used
//! order and capped at [`PlacementCache::with_capacity`] (default
//! [`PlacementCache::DEFAULT_CAPACITY`]), so a long-lived service
//! facing an unbounded stream of distinct signatures evicts cold
//! entries instead of leaking memory. Evictions never affect
//! correctness — a re-lookup of an evicted signature recomputes the
//! same pure function — and are counted in [`CacheStats::evictions`].
//!
//! Feasibility is never compromised: a cached placement is only reused
//! after [`Placement::fits`] re-validates it against the *actual*
//! status; a stale entry is recomputed and replaced. Capacity changes
//! below the quantization threshold therefore cannot cause an
//! infeasible reuse (property-tested in `tests/properties.rs`).
//!
//! # The incremental-repair tier
//!
//! With [`PlacementCache::with_repair`] enabled (default off), an
//! exact-signature miss gets one more chance before the full pipeline
//! runs: a *near-miss* lookup for an entry with the same fingerprint
//! and seed whose quantized free signature is within one bucket per
//! QPU — the "same circuit, free vector drifted by a job" case. The
//! candidate is patched by [`crate::placement::repair::repair`] (only
//! the qubits on now-overloaded QPUs move) and reused **only** if the
//! patched placement passes the same [`Placement::fits`] guard exact
//! hits are re-validated with; otherwise the lookup falls through to
//! the normal miss path. Successes count in
//! [`CacheStats::repair_hits`] and are memoized under the exact
//! current signature (the next identical lookup is an exact hit);
//! failed patches count in [`CacheStats::repair_fallbacks`]. The tier
//! never consults an RNG and picks its candidate by a deterministic
//! total order, so schedules stay reproducible — but a repaired
//! placement is generally *not* what the full pipeline would have
//! computed, which is why the tier is opt-in and default-off
//! (golden-pinned).

use super::repair::repair;
use super::{Placement, PlacementAlgorithm};
use crate::error::PlacementError;
use cloudqc_circuit::{Circuit, Fingerprint};
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use std::collections::HashMap;

/// Hit/miss/eviction counters of a [`PlacementCache`] (surfaced per run
/// in [`crate::runtime::RunReport`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache with an exact-signature entry.
    pub hits: u64,
    /// Lookups that ran the placement algorithm (including
    /// re-validations that found a stale entry, and near-miss repairs
    /// that fell back).
    pub misses: u64,
    /// Entries dropped to keep the cache within its capacity.
    pub evictions: u64,
    /// Exact misses answered by patching a near-miss entry through the
    /// incremental-repair tier ([`PlacementCache::with_repair`]).
    /// Disjoint from both `hits` and `misses`.
    pub repair_hits: u64,
    /// Near-miss candidates whose patch failed the `fits` guard, so
    /// the lookup fell through to the full pipeline. A subset of
    /// `misses` (every fallback is also counted there).
    pub repair_fallbacks: u64,
}

impl CacheStats {
    /// Lookups answered from the cache (exact or repaired) as a
    /// fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.repair_hits;
        let total = served + self.misses;
        if total == 0 {
            return 0.0;
        }
        served as f64 / total as f64
    }

    /// The counter deltas accumulated since an `earlier` snapshot of
    /// the same cache — how a long-lived service reports *per-epoch*
    /// stats from its lifetime counters.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `earlier` is not a prefix of `self`
    /// (some counter would go backwards).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        debug_assert!(
            self.hits >= earlier.hits
                && self.misses >= earlier.misses
                && self.evictions >= earlier.evictions
                && self.repair_hits >= earlier.repair_hits
                && self.repair_fallbacks >= earlier.repair_fallbacks,
            "snapshot taken from a different cache"
        );
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            repair_hits: self.repair_hits - earlier.repair_hits,
            repair_fallbacks: self.repair_fallbacks - earlier.repair_fallbacks,
        }
    }

    /// Sums another cache's counters into this one — how a fleet
    /// reports federation-wide cache behaviour over its per-backend
    /// caches.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.repair_hits += other.repair_hits;
        self.repair_fallbacks += other.repair_fallbacks;
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: Fingerprint,
    free_signature: Vec<usize>,
    seed: u64,
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NONE: usize = usize::MAX;

/// One memoized outcome, threaded into the recency list.
#[derive(Clone)]
struct Slot {
    key: CacheKey,
    value: Result<Placement, PlacementError>,
    prev: usize,
    next: usize,
}

/// A bounded, LRU-evicting memo table over
/// [`PlacementAlgorithm::place`] calls.
///
/// # Example
///
/// ```
/// use cloudqc_circuit::generators::catalog;
/// use cloudqc_cloud::CloudBuilder;
/// use cloudqc_core::placement::{CloudQcPlacement, PlacementCache};
///
/// let cloud = CloudBuilder::paper_default(7).build();
/// let circuit = catalog::by_name("qugan_n71").unwrap();
/// let algo = CloudQcPlacement::default();
/// let mut cache = PlacementCache::new();
/// let cold = cache.place(&algo, &circuit, &cloud, &cloud.status(), 3);
/// let warm = cache.place(&algo, &circuit, &cloud, &cloud.status(), 3);
/// assert_eq!(cold, warm);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Clone)]
pub struct PlacementCache {
    quantum: usize,
    capacity: usize,
    /// Whether an exact miss may be answered by patching a near-miss
    /// entry (the incremental-repair tier; default off).
    repair: bool,
    /// Signature → slot index. Lookup only — iteration order is never
    /// observed, so the map cannot perturb determinism.
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    /// Reusable slot indices freed by capacity shrinks.
    free: Vec<usize>,
    /// Most-recently-used slot (`NONE` when empty).
    head: usize,
    /// Least-recently-used slot (`NONE` when empty) — the eviction
    /// victim.
    tail: usize,
    stats: CacheStats,
    /// (algorithm name, QPU count) of the first lookup — the
    /// one-algorithm-one-cloud contract, enforced in debug builds.
    bound_to: Option<(&'static str, usize)>,
}

impl Default for PlacementCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementCache {
    /// Default entry cap: plenty for the recurring signatures of
    /// steady-state traffic (shapes × nearby free vectors × seeds),
    /// small enough that a service facing millions of distinct
    /// signatures stays bounded.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// An empty cache with the exact (quantum 1) signature and the
    /// default capacity.
    pub fn new() -> Self {
        Self::with_quantum(1)
    }

    /// An empty cache whose free-capacity signature buckets each QPU's
    /// free qubits by `quantum` (1 = exact), with the default capacity.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn with_quantum(quantum: usize) -> Self {
        assert!(quantum > 0, "quantization bucket must be positive");
        PlacementCache {
            quantum,
            capacity: Self::DEFAULT_CAPACITY,
            repair: false,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            stats: CacheStats::default(),
            bound_to: None,
        }
    }

    /// Caps the cache at `capacity` entries, evicting
    /// least-recently-used entries first once full (and immediately, if
    /// the cache already holds more).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            let slot = self.evict_lru();
            self.free.push(slot);
        }
        self
    }

    /// Enables (or disables) the incremental-repair tier: an
    /// exact-signature miss may be answered by patching a near-miss
    /// entry (same fingerprint and seed, free signature within one
    /// bucket per QPU) through [`crate::placement::repair::repair`],
    /// guarded by [`Placement::fits`]. Default off — repaired
    /// placements can differ from what the full pipeline would return,
    /// so the tier is opt-in (see the module docs).
    pub fn with_repair(mut self, repair: bool) -> Self {
        self.repair = repair;
        self
    }

    /// Whether the incremental-repair tier is enabled.
    pub fn repair_enabled(&self) -> bool {
        self.repair
    }

    /// The free-capacity bucket size of this cache's signature.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// The entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized (signature → outcome) entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn free_signature(&self, status: &CloudStatus) -> Vec<usize> {
        (0..status.qpu_count())
            .map(|i| status.free_computing(QpuId::new(i)) / self.quantum)
            .collect()
    }

    /// Detaches `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NONE;
        self.slots[slot].next = NONE;
    }

    /// Prepends `slot` as the most-recently-used entry.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NONE;
        self.slots[slot].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Marks `slot` as just-used.
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Drops the least-recently-used entry; returns its (now unlinked,
    /// unmapped) slot index for reuse.
    fn evict_lru(&mut self) -> usize {
        let slot = self.tail;
        debug_assert_ne!(slot, NONE, "evicting from an empty cache");
        self.unlink(slot);
        self.map.remove(&self.slots[slot].key);
        self.stats.evictions += 1;
        slot
    }

    /// Inserts (or replaces) `key`'s memoized outcome as the
    /// most-recently-used entry, evicting the LRU entry when full.
    fn insert(&mut self, key: CacheKey, value: Result<Placement, PlacementError>) {
        if let Some(&slot) = self.map.get(&key) {
            // A stale entry was recomputed: replace in place.
            self.slots[slot].value = value;
            self.touch(slot);
            return;
        }
        let slot = if self.map.len() >= self.capacity {
            // Full: the LRU entry's slot is recycled for the new one.
            let slot = self.evict_lru();
            self.slots[slot] = Slot {
                key: key.clone(),
                value,
                prev: NONE,
                next: NONE,
            };
            slot
        } else if let Some(slot) = self.free.pop() {
            self.slots[slot] = Slot {
                key: key.clone(),
                value,
                prev: NONE,
                next: NONE,
            };
            slot
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NONE,
                next: NONE,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Memoized [`PlacementAlgorithm::place`], computing the circuit's
    /// fingerprint on the fly. Prefer
    /// [`PlacementCache::place_fingerprinted`] when the fingerprint is
    /// already known (the orchestrator computes each job's once).
    ///
    /// # Errors
    ///
    /// Exactly the algorithm's errors; failures are memoized too.
    pub fn place(
        &mut self,
        algorithm: &dyn PlacementAlgorithm,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        self.place_fingerprinted(
            circuit.fingerprint(),
            algorithm,
            circuit,
            cloud,
            status,
            seed,
        )
    }

    /// Memoized [`PlacementAlgorithm::place`] with a precomputed
    /// `fingerprint` (must be `circuit.fingerprint()`).
    ///
    /// A hit requires signature equality *and*, for successes, that the
    /// cached placement still [`Placement::fits`] the actual `status`;
    /// stale entries are recomputed and replaced.
    ///
    /// The algorithm and cloud are *not* part of the key: one cache
    /// serves one (algorithm instance, cloud) pair for its whole life —
    /// the orchestrator creates one per run. Mixing algorithms, tuned
    /// configurations of one algorithm, or clouds through a single
    /// cache is a logic error (hits would replay the wrong pipeline's
    /// result); debug builds panic on an algorithm-name or QPU-count
    /// mismatch.
    ///
    /// # Errors
    ///
    /// Exactly the algorithm's errors; failures are memoized too.
    pub fn place_fingerprinted(
        &mut self,
        fingerprint: Fingerprint,
        algorithm: &dyn PlacementAlgorithm,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        self.place_with(
            fingerprint,
            algorithm.name(),
            cloud.qpu_count(),
            status,
            seed,
            || algorithm.place(circuit, cloud, status, seed),
        )
    }

    /// The lookup/insert core behind [`PlacementCache::place_fingerprinted`],
    /// with the miss-path computation abstracted into `compute`.
    ///
    /// `compute` **must** return exactly what
    /// `algorithm.place(circuit, cloud, status, seed)` would — the
    /// cache memoizes its value under that signature. Since `place` is
    /// a pure function of its arguments, any supplier that replays a
    /// result computed from the same arguments qualifies: the engine's
    /// parallel admission pass uses this to feed placements computed
    /// speculatively on worker threads through the cache, keeping
    /// hit/miss counters and stored entries byte-identical to the
    /// serial pass.
    ///
    /// `algorithm_name` and `qpu_count` feed the same one-algorithm,
    /// one-cloud debug binding as the direct entry points.
    ///
    /// # Errors
    ///
    /// Exactly the algorithm's errors; failures are memoized too.
    pub fn place_with(
        &mut self,
        fingerprint: Fingerprint,
        algorithm_name: &'static str,
        qpu_count: usize,
        status: &CloudStatus,
        seed: u64,
        compute: impl FnOnce() -> Result<Placement, PlacementError>,
    ) -> Result<Placement, PlacementError> {
        let bound = (algorithm_name, qpu_count);
        debug_assert_eq!(
            *self.bound_to.get_or_insert(bound),
            bound,
            "a PlacementCache serves one (algorithm, cloud) pair"
        );
        let key = CacheKey {
            fingerprint,
            free_signature: self.free_signature(status),
            seed,
        };
        if let Some(&slot) = self.map.get(&key) {
            let feasible = match &self.slots[slot].value {
                Ok(placement) => placement.fits(status),
                Err(_) => true,
            };
            if feasible {
                self.stats.hits += 1;
                self.touch(slot);
                return self.slots[slot].value.clone();
            }
        }
        if self.repair {
            if let Some(candidate) = self.best_near_miss(&key) {
                if let Some(patched) = repair(&candidate, status) {
                    self.stats.repair_hits += 1;
                    let result = Ok(patched);
                    // Memoized under the exact current signature: the
                    // next identical lookup is an exact hit.
                    self.insert(key, result.clone());
                    return result;
                }
                self.stats.repair_fallbacks += 1;
            }
        }
        self.stats.misses += 1;
        let result = compute();
        self.insert(key, result.clone());
        result
    }

    /// The best near-miss candidate for `key`: a memoized *success*
    /// with the same fingerprint and seed whose quantized free
    /// signature is within one bucket of `key`'s on every QPU. A stale
    /// exact entry (same signature, no longer fitting) qualifies at
    /// distance zero — with a coarse quantum that is the
    /// drifted-within-a-bucket case.
    ///
    /// The scan walks the whole map (O(len) — cheap next to the full
    /// pipeline the tier is trying to skip) and the map's iteration
    /// order is unspecified, so the winner is chosen by a
    /// deterministic total order: minimal total bucket distance, then
    /// lexicographically smallest signature (unique per fingerprint ×
    /// seed, so the order is total and the scan order cannot leak into
    /// schedules).
    fn best_near_miss(&self, key: &CacheKey) -> Option<Placement> {
        let mut best: Option<(usize, &CacheKey, &Placement)> = None;
        for (candidate, &slot) in &self.map {
            if candidate.fingerprint != key.fingerprint
                || candidate.seed != key.seed
                || candidate.free_signature.len() != key.free_signature.len()
            {
                continue;
            }
            let adjacent = candidate
                .free_signature
                .iter()
                .zip(&key.free_signature)
                .all(|(&a, &b)| a.abs_diff(b) <= 1);
            if !adjacent {
                continue;
            }
            let Ok(placement) = &self.slots[slot].value else {
                continue;
            };
            let distance: usize = candidate
                .free_signature
                .iter()
                .zip(&key.free_signature)
                .map(|(&a, &b)| a.abs_diff(b))
                .sum();
            let better = match &best {
                None => true,
                Some((d, k, _)) => (distance, &candidate.free_signature) < (*d, &k.free_signature),
            };
            if better {
                best = Some((distance, candidate, placement));
            }
        }
        best.map(|(_, _, placement)| placement.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::CloudQcPlacement;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    fn cloud() -> Cloud {
        CloudBuilder::paper_default(3).build()
    }

    #[test]
    fn hit_replays_the_cold_result() {
        let cloud = cloud();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("knn_n67").unwrap();
        let mut cache = PlacementCache::new();
        let cold = cache.place(&algo, &circuit, &cloud, &cloud.status(), 9);
        let direct = algo.place(&circuit, &cloud, &cloud.status(), 9);
        let warm = cache.place(&algo, &circuit, &cloud, &cloud.status(), 9);
        assert_eq!(cold.as_ref().ok(), direct.as_ref().ok());
        assert_eq!(cold, warm);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                ..CacheStats::default()
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_seeds_and_statuses_miss() {
        let cloud = cloud();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("qugan_n71").unwrap();
        let mut cache = PlacementCache::new();
        let mut status = cloud.status();
        cache.place(&algo, &circuit, &cloud, &status, 1).unwrap();
        cache.place(&algo, &circuit, &cloud, &status, 2).unwrap();
        status.allocate_computing(QpuId::new(0), 1).unwrap();
        cache.place(&algo, &circuit, &cloud, &status, 1).unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 3,
                evictions: 0,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn failures_are_memoized() {
        let cloud = CloudBuilder::new(2).computing_qubits(10).build();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let mut cache = PlacementCache::new();
        let a = cache.place(&algo, &circuit, &cloud, &cloud.status(), 0);
        let b = cache.place(&algo, &circuit, &cloud, &cloud.status(), 0);
        assert!(a.is_err());
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn coarse_quantum_guard_recomputes_instead_of_infeasible_reuse() {
        // Quantum 8 lumps free counts 16..=23 together. Cache a
        // placement at 20 free per QPU, then shrink to 16: the
        // signature matches but the old placement may not fit — the
        // guard must force a recompute, and the fresh result must fit.
        let cloud = cloud();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let mut cache = PlacementCache::with_quantum(8);
        let full = cloud.status();
        let cached = cache.place(&algo, &circuit, &cloud, &full, 5).unwrap();
        assert!(cached.fits(&full));
        let mut tight = cloud.status();
        for i in 0..tight.qpu_count() {
            tight.allocate_computing(QpuId::new(i), 4).unwrap();
        }
        let reused = cache.place(&algo, &circuit, &cloud, &tight, 5).unwrap();
        assert!(reused.fits(&tight), "reuse must never be infeasible");
    }

    #[test]
    fn hit_rate_reporting() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_rejected() {
        PlacementCache::with_quantum(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = PlacementCache::new().with_capacity(0);
    }

    /// A placement algorithm cheap enough to drive millions of cache
    /// fills: every qubit on QPU 0, no search.
    struct StubPlacement;

    impl PlacementAlgorithm for StubPlacement {
        fn name(&self) -> &'static str {
            "stub"
        }

        fn place(
            &self,
            circuit: &Circuit,
            _cloud: &Cloud,
            _status: &CloudStatus,
            _seed: u64,
        ) -> Result<Placement, PlacementError> {
            Ok(Placement::new(vec![QpuId::new(0); circuit.num_qubits()]))
        }
    }

    #[test]
    fn lru_caps_memory_over_millions_of_distinct_signatures() {
        // The long-lived-service scenario: an endless stream of
        // distinct (fingerprint, free-vector, seed) signatures. The
        // unbounded map this replaced grew one entry per signature —
        // a leak; the LRU must stay at its capacity forever.
        let cloud = CloudBuilder::new(2).computing_qubits(8).build();
        let algo = StubPlacement;
        let circuit = Circuit::new(2);
        let fingerprint = circuit.fingerprint();
        const CAPACITY: usize = 512;
        const LOOKUPS: u64 = 2_000_000;
        let mut cache = PlacementCache::new().with_capacity(CAPACITY);
        for seed in 0..LOOKUPS {
            cache
                .place_fingerprinted(fingerprint, &algo, &circuit, &cloud, &cloud.status(), seed)
                .unwrap();
        }
        assert_eq!(cache.len(), CAPACITY, "cache exceeded its capacity");
        let stats = cache.stats();
        assert_eq!(stats.misses, LOOKUPS);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, LOOKUPS - CAPACITY as u64);
        // The hottest (most recent) signatures are retained…
        cache
            .place_fingerprinted(
                fingerprint,
                &algo,
                &circuit,
                &cloud,
                &cloud.status(),
                LOOKUPS - 1,
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        // …and the cold ones were evicted (a re-lookup recomputes —
        // same pure function, so correctness is unaffected).
        cache
            .place_fingerprinted(fingerprint, &algo, &circuit, &cloud, &cloud.status(), 0)
            .unwrap();
        assert_eq!(cache.stats().misses, LOOKUPS + 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_not_least_recently_inserted() {
        let cloud = CloudBuilder::new(2).computing_qubits(8).build();
        let algo = StubPlacement;
        let circuit = Circuit::new(2);
        let fp = circuit.fingerprint();
        let mut cache = PlacementCache::new().with_capacity(2);
        let place = |cache: &mut PlacementCache, seed: u64| {
            cache
                .place_fingerprinted(fp, &algo, &circuit, &cloud, &cloud.status(), seed)
                .unwrap()
        };
        place(&mut cache, 1); // miss: {1}
        place(&mut cache, 2); // miss: {1, 2}
        place(&mut cache, 1); // hit — 1 becomes most recent
        place(&mut cache, 3); // miss: evicts 2, not 1
        assert_eq!(cache.stats().evictions, 1);
        place(&mut cache, 1); // still cached
        assert_eq!(cache.stats().hits, 2);
        place(&mut cache, 2); // evicted: recomputes
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_down_and_reuses_slots() {
        let cloud = CloudBuilder::new(2).computing_qubits(8).build();
        let algo = StubPlacement;
        let circuit = Circuit::new(2);
        let fp = circuit.fingerprint();
        let mut cache = PlacementCache::new().with_capacity(8);
        for seed in 0..8 {
            cache
                .place_fingerprinted(fp, &algo, &circuit, &cloud, &cloud.status(), seed)
                .unwrap();
        }
        assert_eq!(cache.len(), 8);
        cache = cache.with_capacity(3);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 5);
        // The three most recent survive; refills reuse freed slots
        // without exceeding the new cap.
        for seed in 5..8 {
            cache
                .place_fingerprinted(fp, &algo, &circuit, &cloud, &cloud.status(), seed)
                .unwrap();
        }
        assert_eq!(cache.stats().hits, 3);
        for seed in 100..110 {
            cache
                .place_fingerprinted(fp, &algo, &circuit, &cloud, &cloud.status(), seed)
                .unwrap();
        }
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn repair_tier_patches_a_near_miss() {
        // The stub parks both qubits on QPU 0. Cache that at full
        // capacity, then take one qubit of QPU 0 away: the signature
        // moves one bucket, the cached placement no longer fits, and
        // the repair tier must reseat exactly one qubit onto QPU 1 —
        // without running the supplier.
        let cloud = CloudBuilder::new(2).computing_qubits(2).build();
        let algo = StubPlacement;
        let circuit = Circuit::new(2);
        let fp = circuit.fingerprint();
        let mut cache = PlacementCache::new().with_repair(true);
        assert!(cache.repair_enabled());
        let full = cloud.status();
        let cold = cache
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &full, 1)
            .unwrap();
        assert_eq!(cold.qpu_demand(2), vec![2, 0]);
        let mut tight = cloud.status();
        tight.allocate_computing(QpuId::new(0), 1).unwrap();
        let repaired = cache
            .place_with(fp, "stub", 2, &tight, 1, || {
                panic!("a repaired near-miss must not run the pipeline")
            })
            .unwrap();
        assert!(repaired.fits(&tight));
        assert_eq!(repaired.qpu_demand(2), vec![1, 1]);
        assert_eq!(
            cache.stats(),
            CacheStats {
                misses: 1,
                repair_hits: 1,
                ..CacheStats::default()
            }
        );
        // The repaired result was memoized under the exact signature:
        // the same lookup again is a plain hit.
        let warm = cache
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &tight, 1)
            .unwrap();
        assert_eq!(warm, repaired);
        assert_eq!(cache.stats().hits, 1);
        // Deterministic: an identical cache answers identically.
        let mut replay = PlacementCache::new().with_repair(true);
        replay
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &full, 1)
            .unwrap();
        let again = replay
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &tight, 1)
            .unwrap();
        assert_eq!(again, repaired);
    }

    #[test]
    fn repair_fallback_runs_the_pipeline_when_unpatchable() {
        // One QPU: once capacity shrinks there is nowhere to reseat,
        // so the near-miss candidate must fall back to the supplier.
        let cloud = CloudBuilder::new(1).computing_qubits(2).build();
        let algo = StubPlacement;
        let circuit = Circuit::new(2);
        let fp = circuit.fingerprint();
        let mut cache = PlacementCache::new().with_repair(true);
        let full = cloud.status();
        cache
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &full, 4)
            .unwrap();
        let mut tight = cloud.status();
        tight.allocate_computing(QpuId::new(0), 1).unwrap();
        cache
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &tight, 4)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                misses: 2,
                repair_fallbacks: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn repair_off_by_default_never_touches_near_misses() {
        let cloud = CloudBuilder::new(2).computing_qubits(2).build();
        let algo = StubPlacement;
        let circuit = Circuit::new(2);
        let fp = circuit.fingerprint();
        let mut cache = PlacementCache::new();
        assert!(!cache.repair_enabled());
        cache
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &cloud.status(), 1)
            .unwrap();
        let mut tight = cloud.status();
        tight.allocate_computing(QpuId::new(0), 1).unwrap();
        cache
            .place_fingerprinted(fp, &algo, &circuit, &cloud, &tight, 1)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.repair_hits, 0);
        assert_eq!(stats.repair_fallbacks, 0);
    }

    #[test]
    fn repair_stats_flow_through_since_merge_and_hit_rate() {
        let earlier = CacheStats {
            hits: 2,
            misses: 2,
            repair_hits: 1,
            repair_fallbacks: 1,
            ..CacheStats::default()
        };
        let mut later = earlier;
        later.merge(&CacheStats {
            hits: 1,
            misses: 1,
            repair_hits: 2,
            ..CacheStats::default()
        });
        let delta = later.since(&earlier);
        assert_eq!(delta.repair_hits, 2);
        assert_eq!(delta.repair_fallbacks, 0);
        // hit_rate counts repaired lookups as served: (3 + 3) / 9.
        assert!((later.hit_rate() - 6.0 / 9.0).abs() < 1e-12);
    }
}
