//! Placement memoization for the runtime's admission hot path.
//!
//! Profiling the orchestrator under admission churn shows placement as
//! the dominant cost: every pass over the waiting queue re-runs the
//! full Algorithm 1 pipeline (partition sweep × QPU-set search ×
//! scoring) per job, even when nothing about the problem changed since
//! the last attempt — the typical case for a head-of-line job retried
//! on every loop iteration while the cloud drains.
//!
//! [`PlacementCache`] memoizes [`PlacementAlgorithm::place`] outcomes —
//! successes *and* failures (the failure entries are what break the
//! retry loop) — for one fixed (algorithm instance, cloud) pair (the
//! orchestrator builds one cache per run; debug builds enforce the
//! binding), keyed by a signature of everything else the algorithm
//! can observe:
//!
//! * the circuit's structural [`Fingerprint`] (name-independent, so
//!   identical circuits submitted by different tenants share entries),
//! * the cloud's free-computing-capacity vector, quantized by
//!   [`PlacementCache::quantum`] (bucket size in qubits), and
//! * the placement seed.
//!
//! With the default quantum of 1 the signature captures the exact free
//! vector, so a hit replays a computation with identical inputs and the
//! cached result is *provably* what the algorithm would return —
//! cached and uncached runs produce byte-identical schedules (pinned in
//! `tests/runtime_golden.rs`). Coarser quanta trade fidelity for hit
//! rate: capacity drifts within a bucket reuse the old result, which
//! can shift schedules (never correctness — see below) and is why
//! coarse quanta are opt-in.
//!
//! Feasibility is never compromised: a cached placement is only reused
//! after [`Placement::fits`] re-validates it against the *actual*
//! status; a stale entry is recomputed and replaced. Capacity changes
//! below the quantization threshold therefore cannot cause an
//! infeasible reuse (property-tested in `tests/properties.rs`).

use super::{Placement, PlacementAlgorithm};
use crate::error::PlacementError;
use cloudqc_circuit::{Circuit, Fingerprint};
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use std::collections::HashMap;

/// Hit/miss counters of a [`PlacementCache`] (surfaced per run in
/// [`crate::runtime::RunReport`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the placement algorithm (including
    /// re-validations that found a stale entry).
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: Fingerprint,
    free_signature: Vec<usize>,
    seed: u64,
}

/// A memo table over [`PlacementAlgorithm::place`] calls.
///
/// # Example
///
/// ```
/// use cloudqc_circuit::generators::catalog;
/// use cloudqc_cloud::CloudBuilder;
/// use cloudqc_core::placement::{CloudQcPlacement, PlacementCache};
///
/// let cloud = CloudBuilder::paper_default(7).build();
/// let circuit = catalog::by_name("qugan_n71").unwrap();
/// let algo = CloudQcPlacement::default();
/// let mut cache = PlacementCache::new();
/// let cold = cache.place(&algo, &circuit, &cloud, &cloud.status(), 3);
/// let warm = cache.place(&algo, &circuit, &cloud, &cloud.status(), 3);
/// assert_eq!(cold, warm);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Clone, Default)]
pub struct PlacementCache {
    quantum: usize,
    entries: HashMap<CacheKey, Result<Placement, PlacementError>>,
    stats: CacheStats,
    /// (algorithm name, QPU count) of the first lookup — the
    /// one-algorithm-one-cloud contract, enforced in debug builds.
    bound_to: Option<(&'static str, usize)>,
}

impl PlacementCache {
    /// An empty cache with the exact (quantum 1) signature.
    pub fn new() -> Self {
        Self::with_quantum(1)
    }

    /// An empty cache whose free-capacity signature buckets each QPU's
    /// free qubits by `quantum` (1 = exact).
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn with_quantum(quantum: usize) -> Self {
        assert!(quantum > 0, "quantization bucket must be positive");
        PlacementCache {
            quantum,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            bound_to: None,
        }
    }

    /// The free-capacity bucket size of this cache's signature.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoized (signature → outcome) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn free_signature(&self, status: &CloudStatus) -> Vec<usize> {
        (0..status.qpu_count())
            .map(|i| status.free_computing(QpuId::new(i)) / self.quantum)
            .collect()
    }

    /// Memoized [`PlacementAlgorithm::place`], computing the circuit's
    /// fingerprint on the fly. Prefer
    /// [`PlacementCache::place_fingerprinted`] when the fingerprint is
    /// already known (the orchestrator computes each job's once).
    ///
    /// # Errors
    ///
    /// Exactly the algorithm's errors; failures are memoized too.
    pub fn place(
        &mut self,
        algorithm: &dyn PlacementAlgorithm,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        self.place_fingerprinted(
            circuit.fingerprint(),
            algorithm,
            circuit,
            cloud,
            status,
            seed,
        )
    }

    /// Memoized [`PlacementAlgorithm::place`] with a precomputed
    /// `fingerprint` (must be `circuit.fingerprint()`).
    ///
    /// A hit requires signature equality *and*, for successes, that the
    /// cached placement still [`Placement::fits`] the actual `status`;
    /// stale entries are recomputed and replaced.
    ///
    /// The algorithm and cloud are *not* part of the key: one cache
    /// serves one (algorithm instance, cloud) pair for its whole life —
    /// the orchestrator creates one per run. Mixing algorithms, tuned
    /// configurations of one algorithm, or clouds through a single
    /// cache is a logic error (hits would replay the wrong pipeline's
    /// result); debug builds panic on an algorithm-name or QPU-count
    /// mismatch.
    ///
    /// # Errors
    ///
    /// Exactly the algorithm's errors; failures are memoized too.
    pub fn place_fingerprinted(
        &mut self,
        fingerprint: Fingerprint,
        algorithm: &dyn PlacementAlgorithm,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        let bound = (algorithm.name(), cloud.qpu_count());
        debug_assert_eq!(
            *self.bound_to.get_or_insert(bound),
            bound,
            "a PlacementCache serves one (algorithm, cloud) pair"
        );
        let key = CacheKey {
            fingerprint,
            free_signature: self.free_signature(status),
            seed,
        };
        if let Some(cached) = self.entries.get(&key) {
            let feasible = match cached {
                Ok(placement) => placement.fits(status),
                Err(_) => true,
            };
            if feasible {
                self.stats.hits += 1;
                return cached.clone();
            }
        }
        self.stats.misses += 1;
        let result = algorithm.place(circuit, cloud, status, seed);
        self.entries.insert(key, result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::CloudQcPlacement;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    fn cloud() -> Cloud {
        CloudBuilder::paper_default(3).build()
    }

    #[test]
    fn hit_replays_the_cold_result() {
        let cloud = cloud();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("knn_n67").unwrap();
        let mut cache = PlacementCache::new();
        let cold = cache.place(&algo, &circuit, &cloud, &cloud.status(), 9);
        let direct = algo.place(&circuit, &cloud, &cloud.status(), 9);
        let warm = cache.place(&algo, &circuit, &cloud, &cloud.status(), 9);
        assert_eq!(cold.as_ref().ok(), direct.as_ref().ok());
        assert_eq!(cold, warm);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_seeds_and_statuses_miss() {
        let cloud = cloud();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("qugan_n71").unwrap();
        let mut cache = PlacementCache::new();
        let mut status = cloud.status();
        cache.place(&algo, &circuit, &cloud, &status, 1).unwrap();
        cache.place(&algo, &circuit, &cloud, &status, 2).unwrap();
        status.allocate_computing(QpuId::new(0), 1).unwrap();
        cache.place(&algo, &circuit, &cloud, &status, 1).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn failures_are_memoized() {
        let cloud = CloudBuilder::new(2).computing_qubits(10).build();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let mut cache = PlacementCache::new();
        let a = cache.place(&algo, &circuit, &cloud, &cloud.status(), 0);
        let b = cache.place(&algo, &circuit, &cloud, &cloud.status(), 0);
        assert!(a.is_err());
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn coarse_quantum_guard_recomputes_instead_of_infeasible_reuse() {
        // Quantum 8 lumps free counts 16..=23 together. Cache a
        // placement at 20 free per QPU, then shrink to 16: the
        // signature matches but the old placement may not fit — the
        // guard must force a recompute, and the fresh result must fit.
        let cloud = cloud();
        let algo = CloudQcPlacement::default();
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let mut cache = PlacementCache::with_quantum(8);
        let full = cloud.status();
        let cached = cache.place(&algo, &circuit, &cloud, &full, 5).unwrap();
        assert!(cached.fits(&full));
        let mut tight = cloud.status();
        for i in 0..tight.qpu_count() {
            tight.allocate_computing(QpuId::new(i), 4).unwrap();
        }
        let reused = cache.place(&algo, &circuit, &cloud, &tight, 5).unwrap();
        assert!(reused.fits(&tight), "reuse must never be infeasible");
    }

    #[test]
    fn hit_rate_reporting() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_rejected() {
        PlacementCache::with_quantum(0);
    }
}
