//! Partition → QPU mapping (paper Algorithm 2, "Find Placement").
//!
//! Given a circuit partitioning, choose a set of QPUs and map each part
//! to one QPU:
//!
//! 1. Find a candidate QPU set — either by modularity community
//!    detection over the (capacity-weighted) topology (CloudQC) or by a
//!    BFS sweep from the best-provisioned QPU (CloudQC-BFS).
//! 2. Compute the *center* of the candidate set and the center of the
//!    partition interaction graph.
//! 3. Map center to center, then expand outward: parts in max-connection
//!    BFS order, each to the feasible QPU minimizing distance-weighted
//!    communication to already-mapped neighbours.

use super::Placement;
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use cloudqc_graph::center::{graph_center_among, weighted_center};
use cloudqc_graph::community::louvain;
use cloudqc_graph::traversal::bfs_order;
use cloudqc_graph::Graph;

/// How Algorithm 2 selects its candidate QPU set.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FindPlacementMode {
    /// Modularity community detection with capacity-embedded edge
    /// weights (the full CloudQC method).
    Community,
    /// BFS expansion from the QPU with the most free computing qubits
    /// (the CloudQC-BFS baseline variant).
    Bfs,
}

/// Maps circuit partitions onto QPUs.
///
/// * `part_sizes[p]` — computing qubits part `p` needs.
/// * `part_graph` — partition interaction graph (node = part, edge
///   weight = two-qubit gates crossing the pair).
/// * Returns `part_to_qpu`, or `None` if no feasible injective mapping
///   was found (some part cannot fit any remaining QPU).
///
/// Mapping is injective: distinct parts land on distinct QPUs (merging
/// two parts onto one QPU would contradict the partitioning choice —
/// Algorithm 1 explores that option by sweeping the part count instead).
pub fn find_placement(
    part_sizes: &[usize],
    part_graph: &Graph,
    cloud: &Cloud,
    status: &CloudStatus,
    mode: FindPlacementMode,
    seed: u64,
) -> Option<Vec<QpuId>> {
    let parts = part_sizes.len();
    debug_assert_eq!(part_graph.node_count(), parts);
    if parts == 0 {
        return Some(Vec::new());
    }
    let total_demand: usize = part_sizes.iter().sum();

    // Step 1: candidate QPU set.
    let candidates = match mode {
        FindPlacementMode::Community => {
            community_candidates(cloud, status, total_demand, parts, seed)
        }
        FindPlacementMode::Bfs => bfs_candidates(cloud, status, total_demand, parts),
    }?;

    // Step 2: centers.
    let qpu_center = graph_center_among(cloud.topology(), candidates.iter().copied())?;
    let part_center = weighted_center(part_graph)?;

    // Step 3: map outward from the centers.
    let mut mapping: Vec<Option<QpuId>> = vec![None; parts];
    let mut free: Vec<usize> = (0..cloud.qpu_count())
        .map(|i| status.free_computing(QpuId::new(i)))
        .collect();
    let mut taken = vec![false; cloud.qpu_count()];

    // The center part goes to the feasible QPU nearest the QPU-set
    // center (the center itself when it fits).
    let first_qpu = nearest_feasible(
        cloud,
        &candidates,
        qpu_center,
        part_sizes[part_center],
        &free,
        &taken,
    )?;
    mapping[part_center] = Some(first_qpu);
    free[first_qpu.index()] -= part_sizes[part_center];
    taken[first_qpu.index()] = true;

    // Remaining parts in max-connection order: repeatedly pick the
    // unmapped part with the strongest total interaction to mapped
    // parts (falling back to heaviest part for disconnected pieces).
    for _ in 1..parts {
        let next = (0..parts)
            .filter(|&p| mapping[p].is_none())
            .max_by(|&a, &b| {
                let ca = mapped_connection(part_graph, &mapping, a);
                let cb = mapped_connection(part_graph, &mapping, b);
                ca.partial_cmp(&cb)
                    .expect("finite weights")
                    .then_with(|| part_sizes[a].cmp(&part_sizes[b]))
                    .then_with(|| b.cmp(&a))
            })
            .expect("an unmapped part remains");
        // Choose the QPU minimizing distance-weighted communication to
        // already-mapped neighbour parts; prefer candidate-set members,
        // fall back to any QPU (the candidate set was a guide, capacity
        // is a constraint).
        let target = best_qpu_for_part(
            part_graph,
            &mapping,
            next,
            part_sizes[next],
            cloud,
            &candidates,
            qpu_center,
            &free,
            &taken,
        )?;
        mapping[next] = Some(target);
        free[target.index()] -= part_sizes[next];
        taken[target.index()] = true;
    }

    Some(
        mapping
            .into_iter()
            .map(|m| m.expect("all parts mapped"))
            .collect(),
    )
}

/// Expands a partition-level mapping to a per-qubit [`Placement`].
pub fn expand_to_qubits(assignment: &[usize], part_to_qpu: &[QpuId]) -> Placement {
    Placement::from_parts(assignment, part_to_qpu)
}

/// Total interaction weight between part `p` and all mapped parts.
fn mapped_connection(part_graph: &Graph, mapping: &[Option<QpuId>], p: usize) -> f64 {
    part_graph
        .neighbors(p)
        .iter()
        .filter(|(other, _)| mapping[*other].is_some())
        .map(|(_, w)| *w)
        .sum()
}

/// The feasible not-yet-taken QPU nearest `center` (preferring the
/// candidate set, then the rest of the cloud).
fn nearest_feasible(
    cloud: &Cloud,
    candidates: &[usize],
    center: usize,
    size: usize,
    free: &[usize],
    taken: &[bool],
) -> Option<QpuId> {
    let in_set = |u: usize| candidates.contains(&u);
    let feasible = |u: usize| !taken[u] && free[u] >= size;
    // BFS order from the center visits QPUs nearest-first.
    let order = bfs_order(cloud.topology(), center);
    order
        .iter()
        .copied()
        .find(|&u| feasible(u) && in_set(u))
        .or_else(|| order.iter().copied().find(|&u| feasible(u)))
        // Disconnected stragglers (outside the BFS tree).
        .or_else(|| (0..cloud.qpu_count()).find(|&u| feasible(u)))
        .map(QpuId::new)
}

/// The feasible QPU minimizing Σ (edge weight to mapped part ×
/// distance); ties broken by distance to the set center, then id.
#[allow(clippy::too_many_arguments)]
fn best_qpu_for_part(
    part_graph: &Graph,
    mapping: &[Option<QpuId>],
    part: usize,
    size: usize,
    cloud: &Cloud,
    candidates: &[usize],
    center: usize,
    free: &[usize],
    taken: &[bool],
) -> Option<QpuId> {
    let mapped_neighbors: Vec<(QpuId, f64)> = part_graph
        .neighbors(part)
        .iter()
        .filter_map(|&(other, w)| mapping[other].map(|q| (q, w)))
        .collect();
    let mut best: Option<(usize, f64, u32, bool)> = None; // (qpu, cost, center_dist, in_set)
    for u in 0..cloud.qpu_count() {
        if taken[u] || free[u] < size {
            continue;
        }
        let q = QpuId::new(u);
        let cost: f64 = mapped_neighbors
            .iter()
            .map(|&(mq, w)| w * cloud.distance_or_max(q, mq) as f64)
            .sum();
        let center_dist = cloud.distance_or_max(q, QpuId::new(center));
        let in_set = candidates.contains(&u);
        let better = match best {
            None => true,
            Some((bu, bcost, bdist, bset)) => {
                cost < bcost - 1e-9
                    || (cost <= bcost + 1e-9
                        && (center_dist < bdist
                            || (center_dist == bdist && (in_set && !bset))
                            || (center_dist == bdist && in_set == bset && u < bu)))
            }
        };
        if better {
            best = Some((u, cost, center_dist, in_set));
        }
    }
    best.map(|(u, _, _, _)| QpuId::new(u))
}

/// CloudQC candidate selection: Louvain communities over the topology
/// with free computing qubits embedded in edge weights; the smallest
/// community with enough aggregate capacity wins (leaving bigger
/// communities free for future jobs); communities merge with their
/// best-connected peers until capacity suffices.
fn community_candidates(
    cloud: &Cloud,
    status: &CloudStatus,
    demand: usize,
    min_qpus: usize,
    seed: u64,
) -> Option<Vec<usize>> {
    let n = cloud.qpu_count();
    // Capacity-embedded weights: links between well-provisioned QPUs are
    // "stronger" (paper: "embed the number of computing qubits into the
    // edge weight").
    let max_cap = (0..n)
        .map(|i| status.computing_capacity(QpuId::new(i)))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut weighted = Graph::new(n);
    for (u, v, _) in cloud.topology().edges() {
        let fu = status.free_computing(QpuId::new(u)) as f64;
        let fv = status.free_computing(QpuId::new(v)) as f64;
        // Link reliability (1.0 when unmodeled) also scales the weight,
        // per the paper's remark that reliability "can be easily encoded
        // into the edge weights".
        let quality = cloud.bottleneck_reliability(QpuId::new(u), QpuId::new(v));
        weighted.add_edge(u, v, quality * (1.0 + (fu + fv) / (2.0 * max_cap as f64)));
    }
    let communities = louvain(&weighted, seed);
    let free = |u: usize| status.free_computing(QpuId::new(u));
    let capacity_of = |members: &[usize]| members.iter().map(|&u| free(u)).sum::<usize>();

    let mut groups = communities.members();
    // Sort by capacity ascending: pick the tightest fit.
    groups.sort_by_key(|g| capacity_of(g));
    if let Some(group) = groups
        .iter()
        .find(|g| capacity_of(g) >= demand && g.len() >= min_qpus)
    {
        return Some(group.clone());
    }
    // No single community suffices: grow the best one by merging in the
    // community most connected to it until capacity and count suffice.
    let mut merged: Vec<usize> = groups.last()?.clone();
    let mut remaining: Vec<Vec<usize>> = groups[..groups.len() - 1].to_vec();
    while capacity_of(&merged) < demand || merged.len() < min_qpus {
        if remaining.is_empty() {
            return None; // cloud-wide capacity shortfall
        }
        // The community with the strongest link weight into `merged`.
        let idx = (0..remaining.len())
            .max_by(|&a, &b| {
                let ca = group_connection(&weighted, &merged, &remaining[a]);
                let cb = group_connection(&weighted, &merged, &remaining[b]);
                ca.partial_cmp(&cb)
                    .expect("finite weights")
                    .then_with(|| capacity_of(&remaining[a]).cmp(&capacity_of(&remaining[b])))
            })
            .expect("remaining non-empty");
        merged.extend(remaining.swap_remove(idx));
    }
    merged.sort_unstable();
    Some(merged)
}

fn group_connection(g: &Graph, a: &[usize], b: &[usize]) -> f64 {
    let in_b: std::collections::HashSet<usize> = b.iter().copied().collect();
    a.iter()
        .flat_map(|&u| g.neighbors(u))
        .filter(|(v, _)| in_b.contains(v))
        .map(|(_, w)| *w)
        .sum()
}

/// CloudQC-BFS candidate selection: start from the QPU with the most
/// free computing qubits and BFS outward until the collected set has
/// enough aggregate capacity and enough members.
fn bfs_candidates(
    cloud: &Cloud,
    status: &CloudStatus,
    demand: usize,
    min_qpus: usize,
) -> Option<Vec<usize>> {
    let n = cloud.qpu_count();
    let free = |u: usize| status.free_computing(QpuId::new(u));
    let start = (0..n).max_by_key(|&u| (free(u), std::cmp::Reverse(u)))?;
    let mut set = Vec::new();
    let mut capacity = 0usize;
    for u in bfs_order(cloud.topology(), start) {
        set.push(u);
        capacity += free(u);
        if capacity >= demand && set.len() >= min_qpus {
            set.sort_unstable();
            return Some(set);
        }
    }
    // Disconnected topologies: append the rest by free capacity.
    let mut rest: Vec<usize> = (0..n).filter(|u| !set.contains(u)).collect();
    rest.sort_by_key(|&u| std::cmp::Reverse(free(u)));
    for u in rest {
        set.push(u);
        capacity += free(u);
        if capacity >= demand && set.len() >= min_qpus {
            set.sort_unstable();
            return Some(set);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_cloud::CloudBuilder;

    fn cloud_line(n: usize) -> Cloud {
        CloudBuilder::new(n).line_topology().build()
    }

    fn star_part_graph(parts: usize) -> Graph {
        // Part 0 talks to everyone (hub).
        let mut g = Graph::new(parts);
        for p in 1..parts {
            g.add_edge(0, p, 10.0);
        }
        g
    }

    #[test]
    fn maps_all_parts_injectively() {
        let cloud = cloud_line(6);
        let status = cloud.status();
        for mode in [FindPlacementMode::Community, FindPlacementMode::Bfs] {
            let sizes = vec![10, 10, 10];
            let mapping =
                find_placement(&sizes, &star_part_graph(3), &cloud, &status, mode, 0).unwrap();
            let mut qpus: Vec<_> = mapping.clone();
            qpus.dedup();
            assert_eq!(mapping.len(), 3, "{mode:?}");
            let set: std::collections::HashSet<_> = mapping.iter().collect();
            assert_eq!(set.len(), 3, "{mode:?}: mapping not injective");
        }
    }

    #[test]
    fn hub_part_lands_centrally() {
        // Line of 5 QPUs; 3 parts with part 0 as hub: part 0 must not be
        // mapped to a line end *if its neighbours flank it*.
        let cloud = cloud_line(5);
        let status = cloud.status();
        let sizes = vec![5, 5, 5];
        let mapping = find_placement(
            &sizes,
            &star_part_graph(3),
            &cloud,
            &status,
            FindPlacementMode::Community,
            0,
        )
        .unwrap();
        let hub = mapping[0];
        let d1 = cloud.distance_or_max(hub, mapping[1]);
        let d2 = cloud.distance_or_max(hub, mapping[2]);
        // Hub is adjacent to both satellites.
        assert!(
            d1 <= 2 && d2 <= 2,
            "hub {hub} satellites {:?}",
            &mapping[1..]
        );
    }

    #[test]
    fn respects_capacity() {
        let cloud = cloud_line(4);
        let mut status = cloud.status();
        // QPU1 and QPU2 are nearly full.
        status.allocate_computing(QpuId::new(1), 18).unwrap();
        status.allocate_computing(QpuId::new(2), 18).unwrap();
        let sizes = vec![10, 10];
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        let mapping =
            find_placement(&sizes, &g, &cloud, &status, FindPlacementMode::Community, 0).unwrap();
        for (p, q) in mapping.iter().enumerate() {
            assert!(
                status.free_computing(*q) >= sizes[p],
                "part {p} on {q} lacks capacity"
            );
        }
    }

    #[test]
    fn infeasible_when_no_qpu_fits_a_part() {
        let cloud = cloud_line(3);
        let status = cloud.status(); // 20 free each
        let sizes = vec![25, 5];
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        for mode in [FindPlacementMode::Community, FindPlacementMode::Bfs] {
            assert!(find_placement(&sizes, &g, &cloud, &status, mode, 0).is_none());
        }
    }

    #[test]
    fn single_part_works() {
        let cloud = cloud_line(3);
        let status = cloud.status();
        let mapping = find_placement(
            &[12],
            &Graph::new(1),
            &cloud,
            &status,
            FindPlacementMode::Bfs,
            0,
        )
        .unwrap();
        assert_eq!(mapping.len(), 1);
    }

    #[test]
    fn strongly_coupled_parts_land_close() {
        // 4 parts in a chain: 0-1 heavy, 1-2 heavy, 2-3 heavy. On a line
        // topology the mapping should be contiguous-ish: total weighted
        // distance near optimal.
        let cloud = cloud_line(8);
        let status = cloud.status();
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(1, 2, 100.0);
        g.add_edge(2, 3, 100.0);
        let mapping = find_placement(
            &[10, 10, 10, 10],
            &g,
            &cloud,
            &status,
            FindPlacementMode::Community,
            0,
        )
        .unwrap();
        let cost: u32 = [(0, 1), (1, 2), (2, 3)]
            .iter()
            .map(|&(a, b)| cloud.distance_or_max(mapping[a], mapping[b]))
            .sum();
        assert!(cost <= 4, "chain mapping cost {cost}, mapping {mapping:?}");
    }

    #[test]
    fn expand_to_qubits_roundtrip() {
        let p = expand_to_qubits(&[1, 0, 1], &[QpuId::new(4), QpuId::new(2)]);
        assert_eq!(p.qpu_of(0), QpuId::new(2));
        assert_eq!(p.qpu_of(1), QpuId::new(4));
        assert_eq!(p.qpu_of(2), QpuId::new(2));
    }
}
