//! Placement cost metrics (paper §IV.B).
//!
//! * Communication cost `Σ_ij D_ij · C_π(i)π(j)` (objective 1, Eq. 1) —
//!   every two-qubit gate between qubits on different QPUs pays the hop
//!   distance between those QPUs.
//! * Remote-operation count — Table III's metric (`C_ij ≡ 1`).
//! * Per-QPU remote operations `R(V_j)` (Eq. 7), constrained by ε
//!   (Eq. 6).

use super::Placement;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::Cloud;

/// Total communication cost of a placement: for each two-qubit gate
/// whose endpoints sit on different QPUs, add the hop distance between
/// those QPUs (unreachable pairs cost `qpu_count`, strictly worse than
/// any path).
///
/// # Panics
///
/// Panics if the placement is narrower than the circuit.
pub fn communication_cost(circuit: &Circuit, placement: &Placement, cloud: &Cloud) -> f64 {
    assert!(
        placement.num_qubits() >= circuit.num_qubits(),
        "placement narrower than circuit"
    );
    let mut cost = 0.0;
    for (_, a, b) in circuit.two_qubit_gates() {
        let (pa, pb) = (placement.qpu_of(a.index()), placement.qpu_of(b.index()));
        if pa != pb {
            cost += cloud.distance_or_max(pa, pb) as f64;
        }
    }
    cost
}

/// Number of remote operations: two-qubit gates whose endpoints are on
/// different QPUs. This is the single-circuit metric of Table III.
///
/// # Panics
///
/// Panics if the placement is narrower than the circuit.
pub fn remote_op_count(circuit: &Circuit, placement: &Placement) -> usize {
    assert!(
        placement.num_qubits() >= circuit.num_qubits(),
        "placement narrower than circuit"
    );
    circuit
        .two_qubit_gates()
        .filter(|&(_, a, b)| placement.qpu_of(a.index()) != placement.qpu_of(b.index()))
        .count()
}

/// Remote operations borne by each QPU — `R(V_j)` of Eq. 7: a remote
/// gate counts against both of its endpoint QPUs.
///
/// # Panics
///
/// Panics if the placement is narrower than the circuit.
pub fn remote_ops_per_qpu(
    circuit: &Circuit,
    placement: &Placement,
    qpu_count: usize,
) -> Vec<usize> {
    assert!(
        placement.num_qubits() >= circuit.num_qubits(),
        "placement narrower than circuit"
    );
    let mut per_qpu = vec![0usize; qpu_count];
    for (_, a, b) in circuit.two_qubit_gates() {
        let (pa, pb) = (placement.qpu_of(a.index()), placement.qpu_of(b.index()));
        if pa != pb {
            per_qpu[pa.index()] += 1;
            per_qpu[pb.index()] += 1;
        }
    }
    per_qpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_cloud::{CloudBuilder, QpuId};

    fn line_cloud() -> Cloud {
        CloudBuilder::new(4).line_topology().build()
    }

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        c
    }

    #[test]
    fn local_placement_costs_nothing() {
        let c = chain_circuit();
        let p = Placement::new(vec![QpuId::new(2); 4]);
        assert_eq!(communication_cost(&c, &p, &line_cloud()), 0.0);
        assert_eq!(remote_op_count(&c, &p), 0);
    }

    #[test]
    fn cost_weights_by_distance() {
        let c = chain_circuit();
        // Qubits 0,1 on QPU0; qubit 2 on QPU1; qubit 3 on QPU3.
        let p = Placement::new(vec![
            QpuId::new(0),
            QpuId::new(0),
            QpuId::new(1),
            QpuId::new(3),
        ]);
        // cx(1,2): QPU0-QPU1 distance 1. cx(2,3): QPU1-QPU3 distance 2.
        assert_eq!(communication_cost(&c, &p, &line_cloud()), 3.0);
        assert_eq!(remote_op_count(&c, &p), 2);
    }

    #[test]
    fn per_qpu_counts_both_endpoints() {
        let c = chain_circuit();
        let p = Placement::new(vec![
            QpuId::new(0),
            QpuId::new(1),
            QpuId::new(1),
            QpuId::new(2),
        ]);
        // Remote: cx(0,1) QPU0-QPU1, cx(2,3) QPU1-QPU2.
        assert_eq!(remote_ops_per_qpu(&c, &p, 4), vec![1, 2, 1, 0]);
    }

    #[test]
    fn repeated_gates_accumulate() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).cx(0, 1);
        let p = Placement::new(vec![QpuId::new(0), QpuId::new(3)]);
        assert_eq!(remote_op_count(&c, &p), 3);
        assert_eq!(communication_cost(&c, &p, &line_cloud()), 9.0);
    }
}
