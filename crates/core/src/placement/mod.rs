//! Circuit placement: mapping circuit qubits to QPUs.
//!
//! This module implements the paper's placement pipeline and every
//! baseline it compares against (§V.B, §VI.B):
//!
//! * [`CloudQcPlacement`] — Algorithm 1: graph partition sweep (imbalance
//!   × part count) + community-detection QPU selection + center-based
//!   mapping + scoring.
//! * [`CloudQcBfsPlacement`] — the CloudQC-BFS variant: BFS QPU-set
//!   search instead of community detection.
//! * [`RandomPlacement`], [`AnnealingPlacement`], [`GeneticPlacement`] —
//!   the Random / SA [Mao et al.] / GA baselines of Table III.
//!
//! All algorithms implement [`PlacementAlgorithm`] and produce a
//! [`Placement`] (a total map qubit → QPU) that respects free-capacity
//! constraints in the provided [`CloudStatus`].

mod annealing;
mod bfs;
pub mod cache;
mod cloudqc;
pub mod cost;
pub mod estimate;
mod find_placement;
mod genetic;
mod random;
pub mod repair;
pub mod score;

pub use annealing::AnnealingPlacement;
pub use bfs::CloudQcBfsPlacement;
pub use cache::{CacheStats, PlacementCache};
pub use cloudqc::CloudQcPlacement;
pub use find_placement::{find_placement, FindPlacementMode};
pub use genetic::GeneticPlacement;
pub use random::RandomPlacement;
pub use repair::{repair, MoveKernel};

use crate::error::PlacementError;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};

/// A total assignment of circuit qubits to QPUs — the paper's mapping
/// `π: qubits → QPUs`.
///
/// # Example
///
/// ```
/// use cloudqc_core::placement::Placement;
/// use cloudqc_cloud::QpuId;
///
/// let p = Placement::new(vec![QpuId::new(0), QpuId::new(0), QpuId::new(1)]);
/// assert_eq!(p.qpu_of(2), QpuId::new(1));
/// assert_eq!(p.qpu_demand(3), vec![2, 1, 0]);
/// assert_eq!(p.used_qpus(), vec![QpuId::new(0), QpuId::new(1)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    qubit_to_qpu: Vec<QpuId>,
}

impl Placement {
    /// Wraps a per-qubit QPU assignment.
    pub fn new(qubit_to_qpu: Vec<QpuId>) -> Self {
        Placement { qubit_to_qpu }
    }

    /// Builds a placement from a partition assignment and a part → QPU
    /// map.
    ///
    /// # Panics
    ///
    /// Panics if a part index has no QPU in `part_to_qpu`.
    pub fn from_parts(assignment: &[usize], part_to_qpu: &[QpuId]) -> Self {
        Placement {
            qubit_to_qpu: assignment.iter().map(|&p| part_to_qpu[p]).collect(),
        }
    }

    /// QPU hosting qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qpu_of(&self, q: usize) -> QpuId {
        self.qubit_to_qpu[q]
    }

    /// Number of qubits placed.
    pub fn num_qubits(&self) -> usize {
        self.qubit_to_qpu.len()
    }

    /// The raw assignment.
    pub fn assignment(&self) -> &[QpuId] {
        &self.qubit_to_qpu
    }

    /// Computing-qubit demand per QPU (`demand[i]` = qubits placed on
    /// QPU `i`).
    pub fn qpu_demand(&self, qpu_count: usize) -> Vec<usize> {
        let mut demand = vec![0usize; qpu_count];
        for q in &self.qubit_to_qpu {
            demand[q.index()] += 1;
        }
        demand
    }

    /// The distinct QPUs used, ascending.
    pub fn used_qpus(&self) -> Vec<QpuId> {
        let mut ids: Vec<QpuId> = self.qubit_to_qpu.clone();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Whether the whole circuit sits on one QPU (no remote gates).
    pub fn is_single_qpu(&self) -> bool {
        self.used_qpus().len() <= 1
    }

    /// Checks the placement against free capacity: every QPU must have
    /// at least as many free computing qubits as the placement demands.
    pub fn fits(&self, status: &CloudStatus) -> bool {
        self.qpu_demand(status.qpu_count())
            .iter()
            .enumerate()
            .all(|(i, &d)| d <= status.free_computing(QpuId::new(i)))
    }
}

/// A circuit placement algorithm.
///
/// Implementations must return placements that [`Placement::fits`] the
/// provided status; `seed` controls all internal randomness — so
/// [`PlacementAlgorithm::place`] is a pure function of its arguments
/// (the placement cache already depends on this).
///
/// `Sync` is a supertrait: the engine's parallel admission pass runs
/// `place()` for independent waiting jobs on worker threads against a
/// shared snapshot. Every implementation here is a parameter-only
/// struct, so the bound is free.
pub trait PlacementAlgorithm: Sync {
    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Places `circuit` onto the cloud given current availability.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::InsufficientCapacity`] if the circuit cannot
    ///   fit at all.
    /// * [`PlacementError::NoFeasiblePlacement`] if no attempted
    ///   placement satisfied the constraints.
    fn place(
        &self,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError>;
}

/// Guard shared by all algorithms: total free capacity must cover the
/// circuit.
pub(crate) fn check_total_capacity(
    circuit: &Circuit,
    status: &CloudStatus,
) -> Result<(), PlacementError> {
    let required = circuit.num_qubits();
    let available = status.total_free_computing();
    if required > available {
        return Err(PlacementError::InsufficientCapacity {
            required,
            available,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_and_fits() {
        let p = Placement::new(vec![QpuId::new(1); 5]);
        let mut status = CloudStatus::new(vec![10, 10], vec![5, 5]);
        assert!(p.fits(&status));
        status.allocate_computing(QpuId::new(1), 7).unwrap();
        assert!(!p.fits(&status));
    }

    #[test]
    fn from_parts_expands() {
        let p = Placement::from_parts(&[0, 1, 0], &[QpuId::new(5), QpuId::new(2)]);
        assert_eq!(
            p.assignment(),
            &[QpuId::new(5), QpuId::new(2), QpuId::new(5)]
        );
        assert!(!p.is_single_qpu());
    }

    #[test]
    fn single_qpu_detection() {
        assert!(Placement::new(vec![QpuId::new(3); 4]).is_single_qpu());
        assert!(Placement::new(vec![]).is_single_qpu());
    }

    #[test]
    fn capacity_guard() {
        let mut c = Circuit::new(25);
        c.h(0);
        let status = CloudStatus::new(vec![10, 10], vec![5, 5]);
        let err = check_total_capacity(&c, &status).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::InsufficientCapacity {
                required: 25,
                available: 20
            }
        ));
    }
}
