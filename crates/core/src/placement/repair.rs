//! Incremental placement repair: one shared implementation of the
//! local moves the iterative placers use, plus a deterministic
//! [`repair`] entry point that patches a cached placement against the
//! *current* free-capacity vector instead of re-running the full
//! placement pipeline.
//!
//! # The move kernel
//!
//! [`AnnealingPlacement`] and [`GeneticPlacement`] both mutate a
//! qubit→QPU genome under per-QPU capacity constraints, and before this
//! module each carried its own copy of the bookkeeping: a load vector,
//! a free vector, and ad-hoc "move one qubit", "swap two qubits", and
//! "evict off an overloaded QPU" loops. [`MoveKernel`] owns that
//! bookkeeping once:
//!
//! * [`MoveKernel::relocate`] — move one qubit to a QPU with headroom
//!   (SA's relocate neighbourhood; capacity-checked, load-adjusting).
//! * [`MoveKernel::swap`] — exchange two qubits' QPUs (SA's swap
//!   neighbourhood; load-neutral because every qubit demands exactly
//!   one computing slot, so no capacity check is needed).
//! * [`MoveKernel::reseat`] — evict one qubit off its QPU onto the
//!   first QPU with headroom in a cyclic scan (GA's capacity repair;
//!   the scan start is the caller's — random for GA, deterministic
//!   for [`repair`]).
//!
//! Both placers are rewritten on top of the kernel, so there is exactly
//! one implementation of each move.
//!
//! # The repair tier
//!
//! [`repair`] is the middle tier of the warm placement path (see the
//! README's "Incremental placement repair"):
//!
//! ```text
//! exact cache hit  ──►  repair(cached, status)  ──►  full place()
//!      (clone)            (patch the few                (cold)
//!                          infeasible qubits)
//! ```
//!
//! Given a placement cached under a *nearby* free-capacity signature
//! and the current [`CloudStatus`], it relocates only the qubits
//! sitting on now-overloaded QPUs (ascending qubit order, cyclic
//! first-fit target scan — no RNG, so the result is a pure function of
//! its arguments, which the [`PlacementCache`] depends on). Exactness
//! is preserved by construction: the result is returned only if it
//! passes the same [`Placement::fits`] guard every cache hit is
//! re-validated with, and `None` sends the caller to the full
//! pipeline.
//!
//! Repair trades placement *quality* for latency: the patched
//! placement keeps the cached communication structure for every qubit
//! it does not touch, which is exactly the near-miss bet — the free
//! vector moved by a bucket, not the circuit.
//!
//! [`AnnealingPlacement`]: super::AnnealingPlacement
//! [`GeneticPlacement`]: super::GeneticPlacement
//! [`PlacementCache`]: super::PlacementCache

use super::Placement;
use cloudqc_cloud::{CloudStatus, QpuId};

/// Capacity bookkeeping for local moves over a qubit→QPU genome: the
/// per-QPU load implied by the genome and the per-QPU free computing
/// capacity the moves must respect.
///
/// The kernel never touches an RNG and never reads the genome except
/// through the slots the caller names, so every move is deterministic
/// and O(1) (plus the caller's own cost bookkeeping).
#[derive(Clone, Debug)]
pub struct MoveKernel {
    /// `load[i]` = qubits the genome currently assigns to QPU `i`.
    load: Vec<usize>,
    /// `free[i]` = free computing qubits on QPU `i`.
    free: Vec<usize>,
}

impl MoveKernel {
    /// A kernel over `genome` with an explicit free-capacity vector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the genome names a QPU outside
    /// `free`'s range.
    pub fn new(genome: &[QpuId], free: Vec<usize>) -> Self {
        let mut load = vec![0usize; free.len()];
        for q in genome {
            load[q.index()] += 1;
        }
        MoveKernel { load, free }
    }

    /// A kernel over `genome` against a live capacity ledger.
    pub fn against(genome: &[QpuId], status: &CloudStatus) -> Self {
        let free: Vec<usize> = (0..status.qpu_count())
            .map(|i| status.free_computing(QpuId::new(i)))
            .collect();
        Self::new(genome, free)
    }

    /// Number of QPUs the kernel tracks.
    pub fn qpu_count(&self) -> usize {
        self.free.len()
    }

    /// Whether QPU `to` can take one more qubit.
    pub fn has_headroom(&self, to: usize) -> bool {
        self.load[to] < self.free[to]
    }

    /// Whether QPU `qpu` holds more qubits than it has free capacity.
    pub fn is_overloaded(&self, qpu: usize) -> bool {
        self.load[qpu] > self.free[qpu]
    }

    /// Whether every QPU is within its free capacity (the genome
    /// [`Placement::fits`] the ledger the kernel was built against).
    pub fn is_feasible(&self) -> bool {
        self.load.iter().zip(&self.free).all(|(&l, &f)| l <= f)
    }

    /// Moves qubit `q` to QPU `to` if `to` has headroom; returns
    /// whether the move happened. A relocation *back* to a QPU a qubit
    /// just left always succeeds from a feasible state (leaving freed
    /// the slot), so accept/revert loops need no unchecked variant.
    pub fn relocate(&mut self, genome: &mut [QpuId], q: usize, to: usize) -> bool {
        let from = genome[q].index();
        if from == to || !self.has_headroom(to) {
            return false;
        }
        self.load[from] -= 1;
        self.load[to] += 1;
        genome[q] = QpuId::new(to);
        true
    }

    /// Exchanges the QPUs of qubits `q1` and `q2`. Load-neutral (every
    /// qubit demands exactly one computing slot), so a swap never needs
    /// a capacity check and is its own inverse.
    pub fn swap(&self, genome: &mut [QpuId], q1: usize, q2: usize) {
        genome.swap(q1, q2);
    }

    /// Evicts qubit `q` onto the first QPU with headroom in a cyclic
    /// scan starting at `start` (the GA draws `start` at random, the
    /// repair tier derives it from the overloaded QPU). Returns the new
    /// QPU, or `None` when no QPU has headroom (the genome is left
    /// untouched).
    pub fn reseat(&mut self, genome: &mut [QpuId], q: usize, start: usize) -> Option<QpuId> {
        let n = self.free.len();
        let target = (0..n)
            .cycle()
            .skip(start)
            .take(n)
            .find(|&t| self.has_headroom(t))?;
        let from = genome[q].index();
        self.load[from] -= 1;
        self.load[target] += 1;
        genome[q] = QpuId::new(target);
        Some(QpuId::new(target))
    }
}

/// Patches `cached` against the current free-capacity ledger: every
/// qubit sitting on a now-overloaded QPU is reseated (ascending qubit
/// order; cyclic first-fit scan starting just past the overloaded QPU)
/// and the result is returned only if it passes [`Placement::fits`].
/// `None` means the caller must fall back to full `place()`.
///
/// Deterministic — no RNG, no iteration over anything but the genome —
/// so repairing the same placement against the same status always
/// yields the same result (the [`super::PlacementCache`] stores
/// repaired placements under the exact current signature and depends
/// on this).
///
/// A cached placement that still fits is returned unchanged: the
/// near-miss was capacity-harmless and the cached communication
/// structure is kept whole.
pub fn repair(cached: &Placement, status: &CloudStatus) -> Option<Placement> {
    let n = status.qpu_count();
    let genome = cached.assignment();
    // A placement from a different-shaped cloud can never be patched.
    if genome.iter().any(|q| q.index() >= n) {
        return None;
    }
    let mut genome = genome.to_vec();
    let mut kernel = MoveKernel::against(&genome, status);
    if kernel.is_feasible() {
        return Some(cached.clone());
    }
    for q in 0..genome.len() {
        let p = genome[q].index();
        if kernel.is_overloaded(p) {
            kernel.reseat(&mut genome, q, (p + 1) % n)?;
        }
    }
    let repaired = Placement::new(genome);
    debug_assert!(repaired.fits(status), "reseat cleared every overload");
    repaired.fits(status).then_some(repaired)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[usize]) -> Vec<QpuId> {
        raw.iter().map(|&i| QpuId::new(i)).collect()
    }

    #[test]
    fn relocate_checks_headroom_and_moves_load() {
        let mut genome = ids(&[0, 0, 1]);
        let mut kernel = MoveKernel::new(&genome, vec![2, 2, 1]);
        assert!(!kernel.relocate(&mut genome, 0, 0), "no-op move refused");
        assert!(kernel.relocate(&mut genome, 0, 2));
        assert_eq!(genome, ids(&[2, 0, 1]));
        assert!(!kernel.has_headroom(2), "QPU 2 is now full");
        assert!(!kernel.relocate(&mut genome, 1, 2), "full QPU refused");
        // Reverting to the vacated QPU always succeeds.
        assert!(kernel.relocate(&mut genome, 0, 0));
        assert_eq!(genome, ids(&[0, 0, 1]));
    }

    #[test]
    fn swap_is_load_neutral_and_self_inverse() {
        let mut genome = ids(&[0, 1]);
        let kernel = MoveKernel::new(&genome, vec![1, 1]);
        kernel.swap(&mut genome, 0, 1);
        assert_eq!(genome, ids(&[1, 0]));
        assert!(kernel.is_feasible());
        kernel.swap(&mut genome, 0, 1);
        assert_eq!(genome, ids(&[0, 1]));
    }

    #[test]
    fn reseat_scans_cyclically_from_start() {
        let mut genome = ids(&[0, 0, 0]);
        let mut kernel = MoveKernel::new(&genome, vec![2, 0, 1]);
        assert!(kernel.is_overloaded(0));
        // Start at 1: QPU 1 is full, the scan wraps to 2.
        assert_eq!(kernel.reseat(&mut genome, 2, 1), Some(QpuId::new(2)));
        assert_eq!(genome, ids(&[0, 0, 2]));
        assert!(kernel.is_feasible());
        // Nothing has headroom any more.
        let mut full = MoveKernel::new(&genome, vec![2, 0, 1]);
        assert_eq!(full.reseat(&mut genome, 0, 0), None);
        assert_eq!(genome, ids(&[0, 0, 2]), "failed reseat leaves the genome");
    }

    #[test]
    fn repair_returns_still_fitting_placements_unchanged() {
        let cached = Placement::new(ids(&[0, 0, 1]));
        let status = CloudStatus::new(vec![2, 2], vec![1, 1]);
        let repaired = repair(&cached, &status).expect("fits already");
        assert_eq!(repaired, cached);
    }

    #[test]
    fn repair_patches_only_the_overloaded_qpus() {
        // QPU 0 lost a qubit since the placement was cached: exactly
        // one of its two qubits must move, the QPU-1 qubit must not.
        let cached = Placement::new(ids(&[0, 0, 1]));
        let status = CloudStatus::new(vec![1, 2], vec![1, 1]);
        let repaired = repair(&cached, &status).expect("repairable");
        assert!(repaired.fits(&status));
        assert_eq!(repaired.qpu_of(2), QpuId::new(1), "untouched assignment");
        assert_eq!(repaired.qpu_demand(2), vec![1, 2]);
        // Deterministic: same inputs, same patch.
        assert_eq!(repair(&cached, &status), Some(repaired));
    }

    #[test]
    fn repair_fails_when_no_headroom_remains() {
        let cached = Placement::new(ids(&[0, 0, 1]));
        let status = CloudStatus::new(vec![1, 1], vec![1, 1]);
        assert_eq!(repair(&cached, &status), None);
    }

    #[test]
    fn repair_rejects_foreign_cloud_shapes() {
        let cached = Placement::new(ids(&[0, 3]));
        let status = CloudStatus::new(vec![4, 4], vec![1, 1]);
        assert_eq!(repair(&cached, &status), None);
    }

    #[test]
    fn repair_of_empty_placement_is_trivial() {
        let cached = Placement::new(Vec::new());
        let status = CloudStatus::new(vec![1], vec![1]);
        assert_eq!(repair(&cached, &status), Some(cached));
    }
}
