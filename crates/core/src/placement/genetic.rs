//! The genetic-algorithm baseline (paper §VI.B, citing Holland).

use super::cost::communication_cost;
use super::random::RandomPlacement;
use super::repair::MoveKernel;
use super::{check_total_capacity, Placement, PlacementAlgorithm};
use crate::error::PlacementError;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A genetic algorithm over qubit→QPU assignments: tournament selection,
/// uniform crossover with capacity repair, random-move mutation; fitness
/// is `1 / (1 + communication cost)`.
#[derive(Clone, Debug)]
pub struct GeneticPlacement {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-qubit mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl Default for GeneticPlacement {
    fn default() -> Self {
        GeneticPlacement {
            population: 32,
            generations: 80,
            mutation_rate: 0.05,
            tournament: 3,
        }
    }
}

impl PlacementAlgorithm for GeneticPlacement {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn place(
        &self,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        check_total_capacity(circuit, status)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A6A);
        let size = circuit.num_qubits();
        let n = cloud.qpu_count();
        let free: Vec<usize> = (0..n)
            .map(|i| status.free_computing(QpuId::new(i)))
            .collect();

        // Initial population from the random baseline (distinct seeds).
        let mut population: Vec<Vec<QpuId>> = (0..self.population)
            .map(|i| {
                RandomPlacement
                    .place(circuit, cloud, status, seed.wrapping_add(i as u64 * 7919))
                    .map(|p| p.assignment().to_vec())
            })
            .collect::<Result<_, _>>()?;
        let cost_of = |genome: &Vec<QpuId>| {
            communication_cost(circuit, &Placement::new(genome.clone()), cloud)
        };
        let mut costs: Vec<f64> = population.iter().map(cost_of).collect();

        for _ in 0..self.generations {
            let mut next = Vec::with_capacity(self.population);
            // Elitism: keep the single best genome.
            let best_idx = (0..population.len())
                .min_by(|&a, &b| costs[a].partial_cmp(&costs[b]).expect("finite costs"))
                .expect("population non-empty");
            next.push(population[best_idx].clone());
            while next.len() < self.population {
                let pa = self.select(&costs, &mut rng);
                let pb = self.select(&costs, &mut rng);
                let mut child = uniform_crossover(&population[pa], &population[pb], &mut rng);
                mutate(&mut child, n, self.mutation_rate, &mut rng);
                repair_capacity(&mut child, &free, &mut rng);
                next.push(child);
            }
            population = next;
            costs = population.iter().map(cost_of).collect();
        }

        let best_idx = (0..population.len())
            .min_by(|&a, &b| costs[a].partial_cmp(&costs[b]).expect("finite costs"))
            .expect("population non-empty");
        debug_assert_eq!(population[best_idx].len(), size);
        Ok(Placement::new(population[best_idx].clone()))
    }
}

impl GeneticPlacement {
    /// Tournament selection: the lowest-cost of `tournament` random
    /// genomes.
    fn select(&self, costs: &[f64], rng: &mut StdRng) -> usize {
        (0..self.tournament)
            .map(|_| rng.random_range(0..costs.len()))
            .min_by(|&a, &b| costs[a].partial_cmp(&costs[b]).expect("finite costs"))
            .expect("tournament non-empty")
    }
}

fn uniform_crossover(a: &[QpuId], b: &[QpuId], rng: &mut StdRng) -> Vec<QpuId> {
    a.iter()
        .zip(b)
        .map(|(&ga, &gb)| if rng.random_bool(0.5) { ga } else { gb })
        .collect()
}

fn mutate(genome: &mut [QpuId], qpu_count: usize, rate: f64, rng: &mut StdRng) {
    for slot in genome.iter_mut() {
        if rng.random_bool(rate) {
            *slot = QpuId::new(rng.random_range(0..qpu_count));
        }
    }
}

/// Moves qubits off overloaded QPUs onto random QPUs with headroom —
/// the shared [`MoveKernel::reseat`] move with a random scan start.
fn repair_capacity(genome: &mut [QpuId], free: &[usize], rng: &mut StdRng) {
    let n = free.len();
    let mut kernel = MoveKernel::new(genome, free.to_vec());
    for q in 0..genome.len() {
        if kernel.is_overloaded(genome[q].index()) {
            let start = rng.random_range(0..n);
            kernel.reseat(genome, q, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    fn quick_ga() -> GeneticPlacement {
        GeneticPlacement {
            population: 16,
            generations: 20,
            ..GeneticPlacement::default()
        }
    }

    #[test]
    fn improves_over_random() {
        let cloud = CloudBuilder::paper_default(11).build();
        let circuit = catalog::by_name("cat_n65").unwrap();
        let status = cloud.status();
        let random = RandomPlacement.place(&circuit, &cloud, &status, 5).unwrap();
        let ga = quick_ga().place(&circuit, &cloud, &status, 5).unwrap();
        assert!(
            communication_cost(&circuit, &ga, &cloud)
                <= communication_cost(&circuit, &random, &cloud)
        );
    }

    #[test]
    fn stays_capacity_feasible() {
        let cloud = CloudBuilder::paper_default(12).build();
        let circuit = catalog::by_name("qugan_n71").unwrap();
        let status = cloud.status();
        let p = quick_ga().place(&circuit, &cloud, &status, 6).unwrap();
        assert!(p.fits(&status));
    }

    #[test]
    fn deterministic_for_seed() {
        let cloud = CloudBuilder::paper_default(13).build();
        let circuit = catalog::by_name("bv_n70").unwrap();
        let a = quick_ga()
            .place(&circuit, &cloud, &cloud.status(), 8)
            .unwrap();
        let b = quick_ga()
            .place(&circuit, &cloud, &cloud.status(), 8)
            .unwrap();
        assert_eq!(a, b);
    }
}
