//! The CloudQC-BFS placement variant (paper §VI.B).
//!
//! "Also a method proposed by us. It differs from CloudQC in using a BFS
//! search to find feasible QPU for each partition instead of community
//! detection."

use super::cloudqc::place_with_mode;
use super::find_placement::FindPlacementMode;
use super::{Placement, PlacementAlgorithm};
use crate::config::PlacementConfig;
use crate::error::PlacementError;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::{Cloud, CloudStatus};

/// CloudQC with BFS QPU-set selection instead of community detection.
/// Shares every other pipeline stage (partition sweep, center mapping,
/// scoring) with [`super::CloudQcPlacement`].
#[derive(Clone, Debug, Default)]
pub struct CloudQcBfsPlacement {
    config: PlacementConfig,
}

impl CloudQcBfsPlacement {
    /// Uses the given pipeline configuration.
    pub fn new(config: PlacementConfig) -> Self {
        CloudQcBfsPlacement { config }
    }
}

impl PlacementAlgorithm for CloudQcBfsPlacement {
    fn name(&self) -> &'static str {
        "CloudQC-BFS"
    }

    fn place(
        &self,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        place_with_mode(
            circuit,
            cloud,
            status,
            &self.config,
            FindPlacementMode::Bfs,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::cost::remote_op_count;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    #[test]
    fn places_large_circuits() {
        let cloud = CloudBuilder::paper_default(0).build();
        let circuit = catalog::by_name("cat_n130").unwrap();
        let status = cloud.status();
        let p = CloudQcBfsPlacement::default()
            .place(&circuit, &cloud, &status, 1)
            .unwrap();
        assert!(p.fits(&status));
        // A chain circuit should still cut cheaply under BFS selection.
        assert!(remote_op_count(&circuit, &p) <= 30);
    }

    #[test]
    fn name_distinguishes_variant() {
        assert_eq!(CloudQcBfsPlacement::default().name(), "CloudQC-BFS");
    }
}
