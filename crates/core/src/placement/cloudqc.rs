//! The CloudQC placement algorithm (paper Algorithm 1).

use super::cost::{communication_cost, remote_ops_per_qpu};
use super::estimate::estimate_execution_time;
use super::find_placement::{expand_to_qubits, find_placement, FindPlacementMode};
use super::score::placement_score;
use super::{check_total_capacity, Placement, PlacementAlgorithm};
use crate::config::PlacementConfig;
use crate::error::PlacementError;
use cloudqc_circuit::interaction::{interaction_graph, partition_interaction_graph};
use cloudqc_circuit::Circuit;
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use cloudqc_graph::partition::{partition, PartitionConfig};

/// CloudQC's filtering-and-scoring placement (Algorithm 1):
///
/// 1. If some QPU can host the whole circuit, place it there (best fit).
/// 2. Otherwise sweep `(imbalance factor α, part count k)`: partition
///    the interaction graph, find a QPU mapping (Algorithm 2 with
///    community detection), filter by feasibility (capacity, ε), and
///    score survivors with `S = α/T + β/C`.
/// 3. Return the highest-scoring placement.
#[derive(Clone, Debug, Default)]
pub struct CloudQcPlacement {
    config: PlacementConfig,
}

impl CloudQcPlacement {
    /// Uses the given pipeline configuration.
    pub fn new(config: PlacementConfig) -> Self {
        CloudQcPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }
}

impl PlacementAlgorithm for CloudQcPlacement {
    fn name(&self) -> &'static str {
        "CloudQC"
    }

    fn place(
        &self,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        place_with_mode(
            circuit,
            cloud,
            status,
            &self.config,
            FindPlacementMode::Community,
            seed,
        )
    }
}

/// Shared Algorithm 1 driver, parameterized by the Algorithm 2 variant
/// (community detection for CloudQC, BFS for CloudQC-BFS).
pub(crate) fn place_with_mode(
    circuit: &Circuit,
    cloud: &Cloud,
    status: &CloudStatus,
    config: &PlacementConfig,
    mode: FindPlacementMode,
    seed: u64,
) -> Result<Placement, PlacementError> {
    check_total_capacity(circuit, status)?;
    let size = circuit.num_qubits();

    // Line 2-3: whole circuit fits on one QPU → best-fit single QPU
    // (smallest sufficient free block preserves large blocks for big
    // future jobs — the "future resource availability" goal of §V.B).
    if let Some(best_fit) = (0..cloud.qpu_count())
        .map(QpuId::new)
        .filter(|&q| status.free_computing(q) >= size)
        .min_by_key(|&q| (status.free_computing(q), q.index()))
    {
        return Ok(Placement::new(vec![best_fit; size]));
    }

    let ig = interaction_graph(circuit);

    // Part-count sweep bounds: at least ⌈size / biggest free block⌉
    // parts are needed; explore a few more.
    let max_block = status.max_free_computing().max(1);
    let k_min = size.div_ceil(max_block).max(2);
    let k_max = (k_min + config.k_sweep_width)
        .min(cloud.qpu_count())
        .min(size);
    if k_min > k_max {
        return Err(PlacementError::NoFeasiblePlacement);
    }

    let mut best: Option<(f64, Placement)> = None;
    let mut sweep_ran = false;
    for (ai, &alpha) in config.imbalance_factors.iter().enumerate() {
        for k in k_min..=k_max {
            let part_cfg = PartitionConfig::new(k)
                .with_imbalance(alpha)
                .with_seed(seed ^ ((ai as u64) << 32) ^ k as u64);
            let Ok(parts) = partition(&ig, &part_cfg) else {
                continue;
            };
            let members = parts.part_members();
            let part_sizes: Vec<usize> = members.iter().map(|m| m.len()).collect();
            let part_graph = partition_interaction_graph(circuit, parts.assignment(), k);
            let Some(part_to_qpu) =
                find_placement(&part_sizes, &part_graph, cloud, status, mode, seed)
            else {
                continue;
            };
            let placement = expand_to_qubits(parts.assignment(), &part_to_qpu);
            // Feasibility filter: capacity (find_placement guarantees it,
            // but double-check) and the ε remote-op threshold (Eq. 6).
            if !placement.fits(status) {
                continue;
            }
            if config.epsilon != usize::MAX {
                let per_qpu = remote_ops_per_qpu(circuit, &placement, cloud.qpu_count());
                if per_qpu.iter().any(|&r| r > config.epsilon) {
                    continue;
                }
            }
            let time = estimate_execution_time(circuit, &placement, cloud);
            let cost = communication_cost(circuit, &placement, cloud);
            let score = placement_score(time, cost, config.score_alpha, config.score_beta);
            sweep_ran = true;
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, placement));
            }
        }
    }
    let _ = sweep_ran;
    if let Some((_, p)) = best {
        return Ok(p);
    }
    // Balanced partitioning cannot always match very skewed capacity
    // profiles (e.g. one 40-qubit QPU among 8-qubit ones). Fall back to
    // a capacity-aware fill that keeps interacting qubits together:
    // qubits in interaction-BFS order onto QPUs in capacity order.
    // Respects Eq. 3 by construction; ε is still enforced.
    if let Some(placement) = capacity_fill(circuit, &ig, cloud, status) {
        if config.epsilon == usize::MAX
            || remote_ops_per_qpu(circuit, &placement, cloud.qpu_count())
                .iter()
                .all(|&r| r <= config.epsilon)
        {
            return Ok(placement);
        }
    }
    Err(PlacementError::NoFeasiblePlacement)
}

/// Last-resort capacity-aware placement: orders qubits by BFS over the
/// interaction graph (so neighbours stay together) and QPUs by free
/// capacity descending (ties: lower id), then fills QPU by QPU.
fn capacity_fill(
    circuit: &Circuit,
    interaction: &cloudqc_graph::Graph,
    cloud: &Cloud,
    status: &CloudStatus,
) -> Option<Placement> {
    use cloudqc_graph::center::weighted_center;
    use cloudqc_graph::traversal::bfs_order;

    let size = circuit.num_qubits();
    // Qubit order: BFS from the interaction center, then any stragglers
    // (isolated qubits / other components) in index order.
    let mut order: Vec<usize> = match weighted_center(interaction) {
        Some(center) => bfs_order(interaction, center),
        None => Vec::new(),
    };
    let mut seen = vec![false; size];
    for &q in &order {
        seen[q] = true;
    }
    order.extend((0..size).filter(|&q| !seen[q]));

    // QPU order: free capacity descending.
    let mut qpus: Vec<usize> = (0..cloud.qpu_count()).collect();
    qpus.sort_by_key(|&i| (std::cmp::Reverse(status.free_computing(QpuId::new(i))), i));

    let mut assignment = vec![QpuId::new(0); size];
    let mut qpu_iter = qpus.into_iter();
    let mut current = qpu_iter.next()?;
    let mut remaining = status.free_computing(QpuId::new(current));
    for q in order {
        while remaining == 0 {
            current = qpu_iter.next()?;
            remaining = status.free_computing(QpuId::new(current));
        }
        assignment[q] = QpuId::new(current);
        remaining -= 1;
    }
    Some(Placement::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::cost::remote_op_count;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    fn paper_cloud(seed: u64) -> Cloud {
        CloudBuilder::paper_default(seed).build()
    }

    #[test]
    fn small_circuit_lands_on_one_qpu() {
        let cloud = paper_cloud(0);
        let circuit = catalog::by_name("vqe_n4").unwrap();
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 1)
            .unwrap();
        assert!(p.is_single_qpu());
        assert_eq!(remote_op_count(&circuit, &p), 0);
    }

    #[test]
    fn large_circuit_spreads_and_fits() {
        let cloud = paper_cloud(1);
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let status = cloud.status();
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &status, 1)
            .unwrap();
        assert_eq!(p.num_qubits(), 127);
        assert!(p.fits(&status));
        assert!(p.used_qpus().len() >= 7); // 127 qubits / 20 per QPU
    }

    #[test]
    fn ghz_chain_places_cheaply() {
        // A chain circuit must induce far fewer remote ops than gates.
        let cloud = paper_cloud(2);
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 3)
            .unwrap();
        let remote = remote_op_count(&circuit, &p);
        // Paper Table III: CloudQC achieves 8 on ghz_n127; anything close
        // to the part count is acceptable, anything near random (~100+)
        // is a regression.
        assert!(remote <= 20, "remote ops {remote}");
    }

    #[test]
    fn insufficient_capacity_reported() {
        let cloud = CloudBuilder::new(2).computing_qubits(10).build();
        let circuit = catalog::by_name("ghz_n127").unwrap();
        let err = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 0)
            .unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
    }

    #[test]
    fn respects_partially_used_cloud() {
        let cloud = paper_cloud(3);
        let mut status = cloud.status();
        // Fill half the QPUs completely.
        for i in 0..10 {
            status.allocate_computing(QpuId::new(i), 20).unwrap();
        }
        let circuit = catalog::by_name("cat_n65").unwrap();
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &status, 4)
            .unwrap();
        assert!(p.fits(&status));
        for q in p.used_qpus() {
            assert!(q.index() >= 10, "placed on full {q}");
        }
    }

    #[test]
    fn epsilon_constraint_filters() {
        let cloud = paper_cloud(4);
        let circuit = catalog::by_name("qft_n63").unwrap();
        // An absurdly tight ε makes every distributed placement
        // infeasible; qft_n63 (63 qubits) cannot fit one QPU, so
        // placement must fail.
        let algo = CloudQcPlacement::new(PlacementConfig::default().with_epsilon(1));
        let err = algo
            .place(&circuit, &cloud, &cloud.status(), 5)
            .unwrap_err();
        assert_eq!(err, PlacementError::NoFeasiblePlacement);
    }

    #[test]
    fn deterministic_for_seed() {
        let cloud = paper_cloud(5);
        let circuit = catalog::by_name("knn_n67").unwrap();
        let algo = CloudQcPlacement::default();
        let a = algo.place(&circuit, &cloud, &cloud.status(), 9).unwrap();
        let b = algo.place(&circuit, &cloud, &cloud.status(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_capacities_fall_back_to_capacity_fill() {
        use cloudqc_cloud::Qpu;
        // Balanced partitioning cannot split 50 qubits over (40,8,8,8);
        // the capacity-aware fallback must.
        let cloud = CloudBuilder::new(4)
            .ring_topology()
            .heterogeneous_qpus(vec![
                Qpu::new(40, 5),
                Qpu::new(8, 5),
                Qpu::new(8, 5),
                Qpu::new(8, 5),
            ])
            .build();
        let circuit = catalog::by_name("ghz_n50").unwrap();
        let status = cloud.status();
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &status, 1)
            .unwrap();
        assert!(p.fits(&status));
        // The big QPU takes the bulk; the BFS ordering keeps the GHZ
        // chain mostly contiguous so remote ops stay near the minimum.
        assert_eq!(p.qpu_demand(4)[0], 40);
        assert!(remote_op_count(&circuit, &p) <= 5);
    }
}
