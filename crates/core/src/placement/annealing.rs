//! The simulated-annealing baseline (paper §VI.B, after Mao et al.,
//! INFOCOM 2023: "a hybrid simulated annealing algorithm to determine
//! the qubits allocation in distributed quantum computing").

use super::cost::communication_cost;
use super::random::RandomPlacement;
use super::repair::MoveKernel;
use super::{check_total_capacity, Placement, PlacementAlgorithm};
use crate::error::PlacementError;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Simulated annealing over qubit→QPU assignments.
///
/// * State: a capacity-feasible assignment (seeded by
///   [`RandomPlacement`]).
/// * Neighbourhood: move one qubit to a QPU with free space, or swap two
///   qubits across QPUs.
/// * Objective: the communication cost `Σ D_ij · C_π(i)π(j)`.
/// * Schedule: geometric cooling, Metropolis acceptance.
#[derive(Clone, Debug)]
pub struct AnnealingPlacement {
    /// Number of annealing iterations.
    pub iterations: usize,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// Geometric cooling rate per iteration.
    pub cooling: f64,
}

impl Default for AnnealingPlacement {
    fn default() -> Self {
        AnnealingPlacement {
            iterations: 20_000,
            initial_temperature: 50.0,
            cooling: 0.9995,
        }
    }
}

impl PlacementAlgorithm for AnnealingPlacement {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn place(
        &self,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        check_total_capacity(circuit, status)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let size = circuit.num_qubits();
        let n = cloud.qpu_count();

        let initial = RandomPlacement.place(circuit, cloud, status, seed)?;
        let mut assignment: Vec<QpuId> = initial.assignment().to_vec();
        // All capacity bookkeeping lives in the shared move kernel; the
        // annealer only proposes, scores, and accepts.
        let mut kernel = MoveKernel::against(&assignment, status);

        let mut current_cost = communication_cost(circuit, &initial, cloud);
        let mut best = assignment.clone();
        let mut best_cost = current_cost;
        let mut temperature = self.initial_temperature;

        // Incremental cost of reassigning qubit q from its current QPU to
        // `to`: recompute only gates touching q.
        let gates: Vec<(usize, usize)> = circuit
            .two_qubit_gates()
            .map(|(_, a, b)| (a.index(), b.index()))
            .collect();
        let mut touching: Vec<Vec<usize>> = vec![Vec::new(); size];
        for (gi, &(a, b)) in gates.iter().enumerate() {
            touching[a].push(gi);
            touching[b].push(gi);
        }
        let gate_cost = |assignment: &[QpuId], gi: usize| -> f64 {
            let (a, b) = gates[gi];
            let (pa, pb) = (assignment[a], assignment[b]);
            if pa == pb {
                0.0
            } else {
                cloud.distance_or_max(pa, pb) as f64
            }
        };

        for _ in 0..self.iterations {
            // Propose: 50% move, 50% swap.
            let (q1, q2_or_target, is_swap) = if rng.random_bool(0.5) {
                let q1 = rng.random_range(0..size);
                let q2 = rng.random_range(0..size);
                if q1 == q2 || assignment[q1] == assignment[q2] {
                    temperature *= self.cooling;
                    continue;
                }
                (q1, q2, true)
            } else {
                let q1 = rng.random_range(0..size);
                let to = rng.random_range(0..n);
                if assignment[q1].index() == to || !kernel.has_headroom(to) {
                    temperature *= self.cooling;
                    continue;
                }
                (q1, to, false)
            };

            // Delta cost over affected gates only.
            let affected: Vec<usize> = if is_swap {
                let mut v = touching[q1].clone();
                v.extend(&touching[q2_or_target]);
                v.sort_unstable();
                v.dedup();
                v
            } else {
                touching[q1].clone()
            };
            let before: f64 = affected.iter().map(|&gi| gate_cost(&assignment, gi)).sum();
            // Apply through the kernel: a swap is its own inverse, and
            // relocating back to the just-vacated QPU always succeeds,
            // so a rejected proposal reverts through the same moves.
            let from = assignment[q1].index();
            if is_swap {
                kernel.swap(&mut assignment, q1, q2_or_target);
            } else {
                let moved = kernel.relocate(&mut assignment, q1, q2_or_target);
                debug_assert!(moved, "headroom was checked before proposing");
            }
            let after: f64 = affected.iter().map(|&gi| gate_cost(&assignment, gi)).sum();
            let delta = after - before;

            let accept = delta <= 0.0
                || (temperature > 1e-9 && rng.random_bool((-delta / temperature).exp().min(1.0)));
            if accept {
                current_cost += delta;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = assignment.clone();
                }
            } else if is_swap {
                kernel.swap(&mut assignment, q1, q2_or_target);
            } else {
                let reverted = kernel.relocate(&mut assignment, q1, from);
                debug_assert!(reverted, "the vacated QPU has headroom");
            }
            temperature *= self.cooling;
        }
        Ok(Placement::new(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::cost::remote_op_count;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    #[test]
    fn improves_over_random() {
        let cloud = CloudBuilder::paper_default(7).build();
        let circuit = catalog::by_name("cat_n65").unwrap();
        let status = cloud.status();
        let random = RandomPlacement.place(&circuit, &cloud, &status, 3).unwrap();
        let sa = AnnealingPlacement {
            iterations: 5_000,
            ..AnnealingPlacement::default()
        }
        .place(&circuit, &cloud, &status, 3)
        .unwrap();
        let c_random = communication_cost(&circuit, &random, &cloud);
        let c_sa = communication_cost(&circuit, &sa, &cloud);
        assert!(c_sa < c_random, "SA {c_sa} vs random {c_random}");
    }

    #[test]
    fn placement_stays_feasible() {
        let cloud = CloudBuilder::paper_default(8).build();
        let circuit = catalog::by_name("knn_n67").unwrap();
        let status = cloud.status();
        let p = AnnealingPlacement {
            iterations: 2_000,
            ..AnnealingPlacement::default()
        }
        .place(&circuit, &cloud, &status, 5)
        .unwrap();
        assert!(p.fits(&status));
        assert!(remote_op_count(&circuit, &p) > 0); // 67 qubits can't be local
    }

    #[test]
    fn deterministic_for_seed() {
        let cloud = CloudBuilder::paper_default(9).build();
        let circuit = catalog::by_name("bv_n70").unwrap();
        let algo = AnnealingPlacement {
            iterations: 1_000,
            ..AnnealingPlacement::default()
        };
        let a = algo.place(&circuit, &cloud, &cloud.status(), 2).unwrap();
        let b = algo.place(&circuit, &cloud, &cloud.status(), 2).unwrap();
        assert_eq!(a, b);
    }
}
