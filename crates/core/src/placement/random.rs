//! The Random placement baseline (paper §VI.B).
//!
//! "It starts with a random node and does a random search to select a
//! set of QPUs that meet computing constraints."

use super::{check_total_capacity, Placement, PlacementAlgorithm};
use crate::error::PlacementError;
use cloudqc_circuit::Circuit;
use cloudqc_cloud::{Cloud, CloudStatus, QpuId};
use cloudqc_graph::traversal::bfs_order;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Random placement: BFS from a random start QPU collects a feasible
/// QPU set; qubits are shuffled and dealt into the set's free slots.
#[derive(Clone, Debug, Default)]
pub struct RandomPlacement;

impl PlacementAlgorithm for RandomPlacement {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn place(
        &self,
        circuit: &Circuit,
        cloud: &Cloud,
        status: &CloudStatus,
        seed: u64,
    ) -> Result<Placement, PlacementError> {
        check_total_capacity(circuit, status)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = cloud.qpu_count();
        let size = circuit.num_qubits();

        // Random start; BFS order gives a connected-ish set, as the
        // baseline describes.
        let start = rng.random_range(0..n);
        let mut selected: Vec<usize> = Vec::new();
        let mut capacity = 0usize;
        for u in bfs_order(cloud.topology(), start) {
            if status.free_computing(QpuId::new(u)) == 0 {
                continue;
            }
            selected.push(u);
            capacity += status.free_computing(QpuId::new(u));
            if capacity >= size {
                break;
            }
        }
        if capacity < size {
            // Disconnected or unlucky: take every QPU with free space.
            selected = (0..n)
                .filter(|&u| status.free_computing(QpuId::new(u)) > 0)
                .collect();
        }

        // Deal shuffled qubits into free slots across the selected QPUs.
        let mut slots: Vec<QpuId> = Vec::with_capacity(size);
        'outer: for &u in &selected {
            for _ in 0..status.free_computing(QpuId::new(u)) {
                slots.push(QpuId::new(u));
                if slots.len() == size {
                    break 'outer;
                }
            }
        }
        if slots.len() < size {
            return Err(PlacementError::NoFeasiblePlacement);
        }
        let mut qubits: Vec<usize> = (0..size).collect();
        qubits.shuffle(&mut rng);
        let mut assignment = vec![QpuId::new(0); size];
        for (slot, q) in slots.into_iter().zip(qubits) {
            assignment[q] = slot;
        }
        Ok(Placement::new(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudqc_circuit::generators::catalog;
    use cloudqc_cloud::CloudBuilder;

    #[test]
    fn placement_fits_and_covers() {
        let cloud = CloudBuilder::paper_default(3).build();
        let circuit = catalog::by_name("knn_n67").unwrap();
        let status = cloud.status();
        let p = RandomPlacement
            .place(&circuit, &cloud, &status, 11)
            .unwrap();
        assert_eq!(p.num_qubits(), 67);
        assert!(p.fits(&status));
    }

    #[test]
    fn different_seeds_differ() {
        let cloud = CloudBuilder::paper_default(3).build();
        let circuit = catalog::by_name("knn_n67").unwrap();
        let status = cloud.status();
        let a = RandomPlacement.place(&circuit, &cloud, &status, 1).unwrap();
        let b = RandomPlacement.place(&circuit, &cloud, &status, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn capacity_error_when_cloud_full() {
        let cloud = CloudBuilder::new(2).computing_qubits(5).build();
        let circuit = catalog::by_name("knn_n67").unwrap();
        assert!(matches!(
            RandomPlacement.place(&circuit, &cloud, &cloud.status(), 0),
            Err(PlacementError::InsufficientCapacity { .. })
        ));
    }
}
