//! Multi-tenant orchestration integration tests: conservation,
//! queueing, and variant behaviour under contention.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::Circuit;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::batch::{job_metric, order_jobs, OrderingPolicy};
use cloudqc::core::config::BatchWeights;
use cloudqc::core::placement::{CloudQcBfsPlacement, CloudQcPlacement};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::tenant::run_multi_tenant;
use cloudqc::sim::Tick;

fn batch(names: &[&str]) -> Vec<Circuit> {
    names
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog circuit"))
        .collect()
}

#[test]
fn every_job_completes_exactly_once_under_contention() {
    // 8 jobs × up to 127 qubits on a 400-qubit cloud: heavy queueing.
    let cloud = CloudBuilder::paper_default(1).build();
    let jobs = batch(&[
        "ghz_n127",
        "qugan_n71",
        "knn_n67",
        "adder_n64",
        "cat_n65",
        "bv_n70",
        "qugan_n39",
        "qft_n29",
    ]);
    let run = run_multi_tenant(
        &jobs,
        &cloud,
        &CloudQcPlacement::default(),
        &CloudQcScheduler,
        OrderingPolicy::default(),
        3,
    )
    .unwrap();
    assert_eq!(run.outcomes.len(), jobs.len());
    let mut seen = vec![false; jobs.len()];
    for o in &run.outcomes {
        assert!(!seen[o.job], "job {} completed twice", o.job);
        seen[o.job] = true;
        assert!(o.finished_at >= o.admitted_at);
        assert!(o.finished_at <= run.makespan);
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn jct_includes_queueing_delay() {
    // A cloud that can hold only one job at a time.
    let cloud = CloudBuilder::new(4)
        .computing_qubits(10)
        .ring_topology()
        .build();
    let jobs = batch(&["ghz_n30", "ghz_n30", "ghz_n30"]);
    let run = run_multi_tenant(
        &jobs,
        &cloud,
        &CloudQcPlacement::default(),
        &CloudQcScheduler,
        OrderingPolicy::Fifo,
        5,
    )
    .unwrap();
    let mut admitted: Vec<Tick> = run.outcomes.iter().map(|o| o.admitted_at).collect();
    admitted.sort();
    // With 30-qubit jobs on a 40-qubit cloud, jobs serialize: at most
    // one admission at t = 0.
    assert_eq!(admitted[0], Tick::ZERO);
    assert!(admitted[1] > Tick::ZERO);
    assert!(admitted[2] >= admitted[1]);
    // And completion time from arrival strictly exceeds the service
    // time for the queued jobs.
    let max_jct = run
        .outcomes
        .iter()
        .map(|o| o.completion_time)
        .max()
        .unwrap();
    assert!(max_jct >= admitted[2]);
}

#[test]
fn all_three_variants_complete_the_same_batch() {
    let cloud = CloudBuilder::paper_default(7).build();
    let jobs = batch(&["qugan_n39", "qft_n29", "adder_n64", "knn_n67"]);
    for (name, run) in [
        (
            "CloudQC",
            run_multi_tenant(
                &jobs,
                &cloud,
                &CloudQcPlacement::default(),
                &CloudQcScheduler,
                OrderingPolicy::default(),
                9,
            ),
        ),
        (
            "CloudQC-BFS",
            run_multi_tenant(
                &jobs,
                &cloud,
                &CloudQcBfsPlacement::default(),
                &CloudQcScheduler,
                OrderingPolicy::default(),
                9,
            ),
        ),
        (
            "CloudQC-FIFO",
            run_multi_tenant(
                &jobs,
                &cloud,
                &CloudQcPlacement::default(),
                &CloudQcScheduler,
                OrderingPolicy::Fifo,
                9,
            ),
        ),
    ] {
        let run = run.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(run.outcomes.len(), 4, "{name}");
        assert!(run.makespan > Tick::ZERO, "{name}");
    }
}

#[test]
fn metric_ordering_prefers_dense_wide_deep_jobs() {
    let jobs = batch(&["bv_n70", "qft_n63", "ghz_n127", "vqe_n4"]);
    let w = BatchWeights::default();
    let order = order_jobs(&jobs, OrderingPolicy::Metric(w));
    // qft_n63 has by far the highest density; vqe_n4 is tiny.
    assert_eq!(order[0], 1);
    assert_eq!(order[3], 3);
    // Metric is consistent with the ordering.
    for pair in order.windows(2) {
        assert!(job_metric(&jobs[pair[0]], &w) >= job_metric(&jobs[pair[1]], &w));
    }
}

#[test]
fn batch_outcome_is_deterministic() {
    let cloud = CloudBuilder::paper_default(21).build();
    let jobs = batch(&["qugan_n39", "ising_n34", "bv_n70"]);
    let go = || {
        run_multi_tenant(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            31,
        )
        .unwrap()
    };
    assert_eq!(go(), go());
}
