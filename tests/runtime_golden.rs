//! Golden seed-equivalence: the unified runtime must reproduce the
//! pre-refactor execution stack's outcomes exactly.
//!
//! The expected values below were captured from the seed
//! implementation (batch-only `run_multi_tenant` + ad-hoc incoming
//! loop, executor rebuilding its request vector every round) at commit
//! `37af50c`, before the runtime refactor. Same seeds, same per-job
//! completion times — any drift here means the orchestrator or the
//! incremental-allocation executor changed observable behaviour.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::Circuit;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::batch::OrderingPolicy;
use cloudqc::core::placement::{CloudQcBfsPlacement, CloudQcPlacement};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::tenant::{run_incoming, run_multi_tenant};
use cloudqc::sim::Tick;

fn batch(names: &[&str]) -> Vec<Circuit> {
    names
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog circuit"))
        .collect()
}

#[test]
fn batch_mode_reproduces_seed_outcomes() {
    let cloud = CloudBuilder::paper_default(1).build();
    let jobs = batch(&[
        "ghz_n127",
        "qugan_n71",
        "knn_n67",
        "adder_n64",
        "cat_n65",
        "bv_n70",
        "qugan_n39",
        "qft_n29",
    ]);
    let expected: [(u64, [u64; 8]); 3] = [
        (3, [2250, 33332, 26120, 10503, 7398, 6254, 35907, 45962]),
        (7, [2217, 22290, 23760, 11285, 8385, 7041, 22439, 42431]),
        (42, [2418, 20946, 36602, 11067, 7957, 6513, 26829, 48698]),
    ];
    for (seed, times) in expected {
        let run = run_multi_tenant(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            seed,
        )
        .unwrap();
        let got: Vec<u64> = run
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks())
            .collect();
        assert_eq!(got, times, "batch metric ordering, seed {seed}");
        assert_eq!(
            run.makespan.as_ticks(),
            *times.iter().max().unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn fifo_contended_batch_reproduces_seed_outcomes() {
    // A cloud that serializes these 30-qubit jobs: queueing delay is
    // part of the golden times.
    let cloud = CloudBuilder::new(4)
        .computing_qubits(10)
        .ring_topology()
        .build();
    let jobs = batch(&["ghz_n30", "ghz_n30", "ghz_n30"]);
    let expected: [(u64, [u64; 3]); 2] = [(5, [643, 1486, 2129]), (11, [643, 1537, 2180])];
    for (seed, times) in expected {
        let run = run_multi_tenant(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::Fifo,
            seed,
        )
        .unwrap();
        let got: Vec<u64> = run
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks())
            .collect();
        assert_eq!(got, times, "batch FIFO, seed {seed}");
    }
}

#[test]
fn incoming_mode_reproduces_seed_outcomes() {
    let cloud = CloudBuilder::paper_default(11).build();
    let jobs: Vec<(Circuit, Tick)> = [
        ("qugan_n39", 0u64),
        ("ising_n34", 5_000),
        ("bv_n70", 9_000),
        ("qft_n29", 9_000),
        ("knn_n67", 15_000),
    ]
    .iter()
    .map(|&(n, t)| (catalog::by_name(n).unwrap(), Tick::new(t)))
    .collect();
    let expected: [(u64, [(u64, u64); 5]); 2] = [
        (
            3,
            [
                (0, 8574),
                (5000, 397),
                (9000, 3431),
                (9000, 32053),
                (15000, 18520),
            ],
        ),
        (
            13,
            [
                (0, 8029),
                (5000, 497),
                (9000, 3431),
                (9000, 31097),
                (15000, 18120),
            ],
        ),
    ];
    for (seed, records) in expected {
        let run = run_incoming(
            &jobs,
            &cloud,
            &CloudQcBfsPlacement::default(),
            &CloudQcScheduler,
            seed,
        )
        .unwrap();
        let got: Vec<(u64, u64)> = run
            .outcomes
            .iter()
            .map(|o| (o.admitted_at.as_ticks(), o.completion_time.as_ticks()))
            .collect();
        assert_eq!(got, records.to_vec(), "incoming mode, seed {seed}");
    }
}
