//! Golden seed-equivalence for the unified runtime.
//!
//! Two generations of pinned schedules:
//!
//! * The *current* goldens (batch / FIFO / incoming tests below) were
//!   re-pinned when fingerprint-derived placement seeding became the
//!   orchestrator default: each job's placement seed is now a function
//!   of its circuit's structural fingerprint instead of its workload
//!   index, so repeated shapes share placement-cache entries. Any
//!   drift in these means the orchestrator, placement pipeline, or
//!   executor changed observable behaviour.
//! * The *legacy* golden (`legacy_index_seeding_opt_out_...`) pins the
//!   pre-default per-job completion times — originally captured from
//!   the seed implementation at commit `37af50c` — under
//!   `with_fingerprint_seeding(false)`. It proves the seeding default
//!   is the only thing that moved: the legacy derivation still
//!   reproduces the pre-refactor execution stack's outcomes exactly.
//!
//! The A/B tests below additionally pin that the placement cache, the
//! batched-allocation elision, and the per-QPU-pair sharded front
//! layer are all *pure* optimizations: enabling or disabling any of
//! them leaves seeded schedules byte-identical.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::Circuit;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::batch::OrderingPolicy;
use cloudqc::core::placement::PlacementAlgorithm;
use cloudqc::core::placement::{CloudQcBfsPlacement, CloudQcPlacement, RandomPlacement};
use cloudqc::core::runtime::{AdmissionPolicy, Orchestrator, RunReport};
use cloudqc::core::schedule::{
    AverageScheduler, CloudQcScheduler, GreedyScheduler, RandomScheduler, Scheduler,
};
use cloudqc::core::tenant::{run_incoming, run_multi_tenant};
use cloudqc::core::workload::Workload;
use cloudqc::core::Executor;
use cloudqc::sim::Tick;

fn batch(names: &[&str]) -> Vec<Circuit> {
    names
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog circuit"))
        .collect()
}

fn big_batch() -> Vec<Circuit> {
    batch(&[
        "ghz_n127",
        "qugan_n71",
        "knn_n67",
        "adder_n64",
        "cat_n65",
        "bv_n70",
        "qugan_n39",
        "qft_n29",
    ])
}

#[test]
fn batch_mode_reproduces_pinned_outcomes() {
    let cloud = CloudBuilder::paper_default(1).build();
    let jobs = big_batch();
    let expected: [(u64, [u64; 8]); 3] = [
        (3, [2252, 21162, 40158, 12332, 7772, 5773, 18257, 48944]),
        (7, [2230, 39072, 24883, 10311, 7144, 5900, 18758, 39718]),
        (42, [2612, 20138, 37860, 10451, 7660, 6243, 18354, 54024]),
    ];
    for (seed, times) in expected {
        let run = run_multi_tenant(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::default(),
            seed,
        )
        .unwrap();
        let got: Vec<u64> = run
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks())
            .collect();
        assert_eq!(got, times, "batch metric ordering, seed {seed}");
        assert_eq!(
            run.makespan.as_ticks(),
            *times.iter().max().unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn legacy_index_seeding_opt_out_reproduces_seed_outcomes() {
    // The pre-default seed derivation (placement seed from the
    // workload index) must still reproduce the original goldens —
    // captured from the seed implementation at commit `37af50c` —
    // exactly. This pins that flipping the fingerprint-seeding default
    // moved nothing else.
    let cloud = CloudBuilder::paper_default(1).build();
    let jobs = big_batch();
    let expected: [(u64, [u64; 8]); 3] = [
        (3, [2250, 33332, 26120, 10503, 7398, 6254, 35907, 45962]),
        (7, [2217, 22290, 23760, 11285, 8385, 7041, 22439, 42431]),
        (42, [2418, 20946, 36602, 11067, 7957, 6513, 26829, 48698]),
    ];
    let OrderingPolicy::Metric(weights) = OrderingPolicy::default() else {
        panic!("metric ordering is the batch default");
    };
    for (seed, times) in expected {
        let placement = CloudQcPlacement::default();
        let run = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
            .with_admission(AdmissionPolicy::PriorityBackfill(weights))
            .with_fingerprint_seeding(false)
            .run(&Workload::batch(jobs.clone()))
            .unwrap();
        let got: Vec<u64> = run
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks())
            .collect();
        assert_eq!(got, times, "legacy seeding, seed {seed}");
    }
}

#[test]
fn fifo_contended_batch_reproduces_pinned_outcomes() {
    // A cloud that serializes these 30-qubit jobs: queueing delay is
    // part of the golden times. The three jobs share one fingerprint,
    // so under fingerprint seeding they are placed identically whenever
    // the free vector recurs (seed 5's times happen to coincide with
    // the legacy pin; seed 11's differ).
    let cloud = CloudBuilder::new(4)
        .computing_qubits(10)
        .ring_topology()
        .build();
    let jobs = batch(&["ghz_n30", "ghz_n30", "ghz_n30"]);
    let expected: [(u64, [u64; 3]); 2] = [(5, [643, 1486, 2129]), (11, [894, 1688, 2482])];
    for (seed, times) in expected {
        let run = run_multi_tenant(
            &jobs,
            &cloud,
            &CloudQcPlacement::default(),
            &CloudQcScheduler,
            OrderingPolicy::Fifo,
            seed,
        )
        .unwrap();
        let got: Vec<u64> = run
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks())
            .collect();
        assert_eq!(got, times, "batch FIFO, seed {seed}");
    }
}

#[test]
fn incoming_mode_reproduces_pinned_outcomes() {
    let cloud = CloudBuilder::paper_default(11).build();
    let jobs: Vec<(Circuit, Tick)> = [
        ("qugan_n39", 0u64),
        ("ising_n34", 5_000),
        ("bv_n70", 9_000),
        ("qft_n29", 9_000),
        ("knn_n67", 15_000),
    ]
    .iter()
    .map(|&(n, t)| (catalog::by_name(n).unwrap(), Tick::new(t)))
    .collect();
    let expected: [(u64, [(u64, u64); 5]); 2] = [
        (
            3,
            [
                (0, 8574),
                (5000, 397),
                (9000, 3431),
                (9000, 30381),
                (15000, 17920),
            ],
        ),
        (
            13,
            [
                (0, 8440),
                (5000, 397),
                (9000, 3331),
                (9000, 31279),
                (15000, 18320),
            ],
        ),
    ];
    for (seed, records) in expected {
        let run = run_incoming(
            &jobs,
            &cloud,
            &CloudQcBfsPlacement::default(),
            &CloudQcScheduler,
            seed,
        )
        .unwrap();
        let got: Vec<(u64, u64)> = run
            .outcomes
            .iter()
            .map(|o| (o.admitted_at.as_ticks(), o.completion_time.as_ticks()))
            .collect();
        assert_eq!(got, records.to_vec(), "incoming mode, seed {seed}");
    }
}

/// Everything observable about a run except the new performance
/// counters (which legitimately differ between the A/B arms).
fn observable(report: &RunReport) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &report.outcomes,
        &report.rejected,
        report.makespan,
        &report.final_free_computing,
        &report.final_free_communication,
    )
}

/// A contended open-arrival workload of repeated shapes: jobs queue
/// behind each other, so waiting jobs are re-placed across admission
/// rounds — the placement cache's hot path.
fn contended_setup() -> (cloudqc::cloud::Cloud, Workload) {
    let cloud = CloudBuilder::new(4)
        .computing_qubits(30)
        .communication_qubits(3)
        .ring_topology()
        .build();
    let pool = batch(&["ghz_n25", "qft_n29", "ghz_n25", "qugan_n39"]);
    (cloud, Workload::poisson(&pool, 16, 500.0, 13))
}

#[test]
fn cached_and_uncached_placement_are_byte_identical() {
    // The placement cache (default signature: exact free vector + per
    // job seed) memoizes a deterministic function, so enabling it must
    // not move a single tick — under the fingerprint-seeding default
    // and under the legacy per-index opt-out alike.
    let (cloud, workload) = contended_setup();
    let placement = CloudQcPlacement::default();
    for seed in [3u64, 7, 42] {
        for fingerprint_seeding in [false, true] {
            let run = |cached: bool| {
                Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                    .with_admission(AdmissionPolicy::Backfill)
                    .with_fingerprint_seeding(fingerprint_seeding)
                    .with_placement_cache(cached)
                    .run(&workload)
                    .expect("contended run completes")
            };
            let cached = run(true);
            let uncached = run(false);
            assert_eq!(
                observable(&cached),
                observable(&uncached),
                "seed {seed}, fingerprint_seeding {fingerprint_seeding}"
            );
            assert_eq!(cached.outcomes.len(), workload.len());
            let stats = cached.placement_cache;
            assert!(stats.misses > 0, "cache was never consulted");
            assert_eq!(uncached.placement_cache.hits, 0);
            assert_eq!(uncached.placement_cache.misses, 0);
            if fingerprint_seeding {
                // Repeated shapes over a recurring free vector must
                // actually hit, or the A/B proves nothing.
                assert!(stats.hits > 0, "no cache hits under fingerprint seeding");
            }
        }
    }
}

#[test]
fn batched_and_unbatched_allocation_are_byte_identical_in_runtime() {
    let (cloud, workload) = contended_setup();
    let placement = CloudQcPlacement::default();
    for seed in [5u64, 11] {
        let run = |batched: bool| {
            Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                .with_batched_allocation(batched)
                .run(&workload)
                .expect("contended run completes")
        };
        let batched = run(true);
        let unbatched = run(false);
        assert_eq!(observable(&batched), observable(&unbatched), "seed {seed}");
        // Same events, same ticks: the batch distribution is identical
        // too — only the number of allocation passes differs.
        assert_eq!(batched.event_batches, unbatched.event_batches);
    }
}

#[test]
fn sharded_and_global_front_layers_are_byte_identical_in_runtime() {
    // The per-QPU-pair sharded front layer only changes *which* shards
    // an allocation round scans, never what it grants: runtime-level
    // schedules must not move a tick, while the work counters show the
    // sharded arm scanning strictly fewer requests per round.
    let (cloud, workload) = contended_setup();
    let placement = CloudQcPlacement::default();
    for seed in [5u64, 11] {
        let run = |sharded: bool| {
            Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                .with_sharded_front_layer(sharded)
                .run(&workload)
                .expect("contended run completes")
        };
        let sharded = run(true);
        let global = run(false);
        assert_eq!(observable(&sharded), observable(&global), "seed {seed}");
        assert_eq!(sharded.event_batches, global.event_batches);
        assert!(
            sharded.allocation.requests_scanned < global.allocation.requests_scanned,
            "sharding should scan fewer requests: {:?} vs {:?}",
            sharded.allocation,
            global.allocation
        );
        assert!(sharded.allocation.rounds > 0);
    }
}

#[test]
fn sharded_and_global_front_layers_are_byte_identical_in_executor() {
    // The executor-level A/B, under the bench's contention profile
    // (scarce pairs, low EPR success, random placements), across every
    // scheduler. For the pure schedulers this exercises the dirty-shard
    // fast path; for the random scheduler sharding must silently stay
    // off (eliding shards would shift its RNG stream).
    let cloud = CloudBuilder::new(6)
        .computing_qubits(40)
        .communication_qubits(2)
        .epr_success_prob(0.2)
        .ring_topology()
        .build();
    let jobs = batch(&["qugan_n39", "knn_n67", "adder_n64", "qft_n29"]);
    let placed: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let p = RandomPlacement
                .place(c, &cloud, &cloud.status(), i as u64)
                .expect("placement succeeds");
            (c, p)
        })
        .collect();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(CloudQcScheduler),
        Box::new(GreedyScheduler),
        Box::new(AverageScheduler),
        Box::new(RandomScheduler),
    ];
    for scheduler in &schedulers {
        for seed in [1u64, 9, 27] {
            let run = |sharded: bool| {
                let mut exec = Executor::new(&cloud, scheduler.as_ref(), seed)
                    .with_sharded_front_layer(sharded);
                let ids: Vec<usize> = placed.iter().map(|(c, p)| exec.add_job(c, p)).collect();
                exec.run_to_completion();
                let results: Vec<_> = ids
                    .into_iter()
                    .map(|id| exec.job_result(id).expect("job finished"))
                    .collect();
                (results, exec.now(), exec.comm_free().to_vec())
            };
            assert_eq!(run(true), run(false), "{} seed {seed}", scheduler.name());
        }
    }
}

#[test]
fn worker_threads_are_byte_identical_in_runtime() {
    // The deterministic-parallel golden: the scoped worker pool only
    // changes *where* shard components and speculative admission
    // placements are evaluated, never what is granted or admitted.
    // Every worker count must reproduce the serial run byte for byte —
    // including the placement cache's hit/miss counters, since the
    // speculative results are fed through the cache's supplier entry
    // point.
    let (cloud, workload) = contended_setup();
    let placement = CloudQcPlacement::default();
    let schedulers: [&dyn Scheduler; 3] = [&CloudQcScheduler, &GreedyScheduler, &AverageScheduler];
    for scheduler in schedulers {
        for seed in [5u64, 11] {
            let run = |threads: usize| {
                Orchestrator::new(&cloud, &placement, scheduler, seed)
                    .with_worker_threads(threads)
                    .run(&workload)
                    .expect("contended run completes")
            };
            let serial = run(1);
            assert_eq!(serial.allocation.workers, 1);
            assert_eq!(serial.allocation.parallel_rounds, 0);
            assert_eq!(serial.allocation.parallel_admission_passes, 0);
            for threads in [2usize, 4, 8] {
                let parallel = run(threads);
                let name = scheduler.name();
                assert_eq!(
                    observable(&parallel),
                    observable(&serial),
                    "{name} @ {threads} workers, seed {seed}"
                );
                assert_eq!(parallel.event_batches, serial.event_batches);
                assert_eq!(parallel.placement_cache, serial.placement_cache);
                // The serial work counters are worker-invariant; only
                // the parallel ones may (and must) move.
                assert_eq!(parallel.allocation.rounds, serial.allocation.rounds);
                assert_eq!(
                    parallel.allocation.requests_scanned,
                    serial.allocation.requests_scanned
                );
                assert_eq!(parallel.allocation.workers, threads as u64);
                assert!(
                    parallel.allocation.parallel_rounds
                        + parallel.allocation.parallel_admission_passes
                        > 0,
                    "{name} @ {threads} workers, seed {seed}: the pool never ran: {:?}",
                    parallel.allocation
                );
            }
        }
    }
}

#[test]
fn worker_threads_with_preemption_are_byte_identical() {
    // Parked requests (PR 6 preemption) live outside the front layer,
    // so they must stay out of the parallel shard scan too: a
    // preemption-heavy run — deadline-free elephants suspended by
    // SLA-critical mice landing mid-flight — must not move a tick at
    // any worker count.
    let cloud = CloudBuilder::new(4)
        .computing_qubits(30)
        .communication_qubits(3)
        .ring_topology()
        .build();
    let placement = CloudQcPlacement::default();
    let elephants = Workload::batch(batch(&["ghz_n25", "qugan_n39"]));
    let pool = batch(&["qft_n13", "ghz_n16", "qft_n13"]);
    for seed in [3u64, 17] {
        let mice = Workload::poisson(&pool, 8, 400.0, seed).with_uniform_sla(6_000);
        let run = |threads: usize| {
            let mut svc = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                .with_preemption(true)
                .with_worker_threads(threads)
                .into_service();
            svc.submit_workload(&elephants);
            svc.submit_workload(&mice);
            let report = svc.drive().expect("preemptive run completes");
            (report, svc.report().preemptions)
        };
        let (serial, serial_preemptions) = run(1);
        assert!(
            serial_preemptions > 0,
            "seed {seed}: the scenario never preempted, the golden proves nothing"
        );
        for threads in [2usize, 4, 8] {
            let (parallel, preemptions) = run(threads);
            assert_eq!(
                observable(&parallel),
                observable(&serial),
                "{threads} workers, seed {seed}"
            );
            assert_eq!(preemptions, serial_preemptions);
            assert_eq!(parallel.placement_cache, serial.placement_cache);
        }
    }
}

#[test]
fn two_epoch_service_with_shared_cache_matches_independent_runs() {
    // The service-layer golden: driving the same workload through two
    // epochs of one resident Service (whose placement cache persists
    // across epochs) must produce *exactly* the per-job completion
    // times of two independent Orchestrator::run calls — cache reuse
    // may only change speed, never outcomes — while the warm epoch
    // proves the cache actually carried over (hit-rate > 0).
    let (cloud, workload) = contended_setup();
    let placement = CloudQcPlacement::default();
    for seed in [3u64, 7, 42] {
        let orch = || {
            Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                .with_admission(AdmissionPolicy::Backfill)
        };
        let solo = orch().run(&workload).expect("independent run completes");
        let mut svc = orch().into_service();
        svc.submit_workload(&workload);
        let epoch1 = svc.drive().expect("epoch 1 completes");
        svc.submit_workload(&workload);
        let epoch2 = svc.drive().expect("epoch 2 completes");
        assert_eq!(observable(&epoch1), observable(&solo), "seed {seed}");
        assert_eq!(observable(&epoch2), observable(&solo), "seed {seed}");
        // Warm-epoch cache hit-rate > 0: the persistent cache answered
        // admission lookups epoch 1 already paid for.
        assert!(
            epoch2.placement_cache.hit_rate() > 0.0,
            "seed {seed}: warm epoch never hit the shared cache: {:?}",
            epoch2.placement_cache
        );
        assert!(
            epoch2.placement_cache.misses < epoch1.placement_cache.misses,
            "seed {seed}: warm epoch should miss less: {:?} vs {:?}",
            epoch2.placement_cache,
            epoch1.placement_cache
        );
        // The streaming report saw both epochs.
        let report = svc.report();
        assert_eq!(report.epochs, 2);
        assert_eq!(report.completed, 2 * solo.outcomes.len() as u64);
        assert_eq!(
            report.placement_cache.hits,
            epoch1.placement_cache.hits + epoch2.placement_cache.hits
        );
    }
}

#[test]
fn continuous_clock_over_drained_boundary_matches_epoch_mode() {
    // The continuous-clock golden: epoch mode is the degenerate case of
    // the continuous service. Whenever the cloud fully drains between
    // two workloads, one continuous run over their concatenation (the
    // second offset to arrive after quiescence) must reproduce two
    // epoch drives *byte-identically* — same admission instants, same
    // placements, same EPR rounds, same completion ticks — modulo the
    // frame shift: continuous records carry lifetime clocks and global
    // job indices, so epoch 2's records reappear shifted by the
    // boundary time and the first workload's job count.
    let (cloud, w1) = contended_setup();
    let placement = CloudQcPlacement::default();
    let pool = batch(&["qft_n29", "ghz_n25", "qugan_n39"]);
    let w2 = Workload::poisson(&pool, 12, 400.0, 29);
    let shift_back = |mut r: cloudqc::core::runtime::JobRecord, jobs: usize, base: u64| {
        r.job -= jobs;
        r.arrived_at = Tick::new(r.arrived_at.as_ticks() - base);
        r.admitted_at = Tick::new(r.admitted_at.as_ticks() - base);
        r.finished_at = Tick::new(r.finished_at.as_ticks() - base);
        r
    };
    for seed in [3u64, 7, 42] {
        let orch = || {
            Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                .with_admission(AdmissionPolicy::Backfill)
        };
        // Epoch face: two drives, each a fresh clock-0 era.
        let mut epochs = orch().into_service();
        epochs.submit_workload(&w1);
        let e1 = epochs.drive().expect("epoch 1 completes");
        epochs.submit_workload(&w2);
        let e2 = epochs.drive().expect("epoch 2 completes");
        // Continuous face: same engine, never reset; the second
        // workload is submitted in lifetime coordinates.
        let mut cont = orch().into_service();
        cont.submit_workload(&w1);
        let c1 = cont.drive_to_quiescence().expect("window 1 completes");
        assert!(c1.quiescent, "seed {seed}: cloud must drain at boundary");
        let base = cont.now().as_ticks();
        cont.submit_workload(&w2.clone().offset_arrivals(base));
        let c2 = cont.drive_to_quiescence().expect("window 2 completes");
        // Window 1 shares epoch 1's frame exactly (base 0); epoch
        // reports sort outcomes by job index, windows by completion.
        let mut got1 = c1.outcomes.clone();
        got1.sort_by_key(|r| r.job);
        assert_eq!(got1, e1.outcomes, "seed {seed}: boundary window");
        let mut got2: Vec<_> = c2
            .outcomes
            .iter()
            .map(|r| shift_back(r.clone(), w1.len(), base))
            .collect();
        got2.sort_by_key(|r| r.job);
        assert_eq!(got2, e2.outcomes, "seed {seed}: continuous epoch 2");
        assert!(c1.rejected.is_empty() && c2.rejected.is_empty());
        assert!(e1.rejected.is_empty() && e2.rejected.is_empty());
        assert_eq!(
            cont.now(),
            epochs.now(),
            "seed {seed}: both faces park the lifetime clock at the same tick"
        );
    }
}

#[test]
fn batched_and_unbatched_allocation_are_byte_identical_in_executor() {
    // The executor-level A/B, under the bench's contention profile:
    // scarce pairs, low EPR success, random placements.
    let cloud = CloudBuilder::new(6)
        .computing_qubits(40)
        .communication_qubits(2)
        .epr_success_prob(0.2)
        .ring_topology()
        .build();
    let jobs = batch(&["qugan_n39", "knn_n67", "adder_n64", "qft_n29"]);
    let placed: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let p = RandomPlacement
                .place(c, &cloud, &cloud.status(), i as u64)
                .expect("placement succeeds");
            (c, p)
        })
        .collect();
    for seed in [1u64, 9, 27] {
        let run = |batched: bool| {
            let mut exec =
                Executor::new(&cloud, &CloudQcScheduler, seed).with_batched_allocation(batched);
            let ids: Vec<usize> = placed.iter().map(|(c, p)| exec.add_job(c, p)).collect();
            exec.run_to_completion();
            let results: Vec<_> = ids
                .into_iter()
                .map(|id| exec.job_result(id).expect("job finished"))
                .collect();
            (results, exec.now(), exec.comm_free().to_vec())
        };
        assert_eq!(run(true), run(false), "seed {seed}");
    }
}
