//! Cross-crate property-based tests: random circuits and clouds through
//! the full placement + scheduling + execution pipeline.

use cloudqc::circuit::Circuit;
use cloudqc::cloud::{Cloud, CloudBuilder};
use cloudqc::core::placement::{
    cost, repair, CloudQcBfsPlacement, CloudQcPlacement, PlacementAlgorithm, PlacementCache,
    RandomPlacement,
};
use cloudqc::core::schedule::{
    AverageScheduler, CloudQcScheduler, GreedyScheduler, RandomScheduler, RemoteDag, Scheduler,
};
use cloudqc::core::{simulate_job, Executor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random circuit with chain/star/random two-qubit structure.
fn random_circuit(qubits: usize, gates: usize, shape: u8, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(qubits).with_name("random");
    for q in 0..qubits {
        c.h(q);
    }
    for g in 0..gates {
        let (a, b) = match shape % 3 {
            0 => (g % (qubits - 1), g % (qubits - 1) + 1), // chain
            1 => (0, 1 + g % (qubits - 1)),                // star
            _ => {
                let a = rng.random_range(0..qubits);
                let mut b = rng.random_range(0..qubits);
                while b == a {
                    b = rng.random_range(0..qubits);
                }
                (a, b)
            }
        };
        c.cx(a, b);
    }
    c.measure_all();
    c
}

fn small_cloud(seed: u64) -> Cloud {
    CloudBuilder::new(6)
        .computing_qubits(8)
        .communication_qubits(3)
        .random_topology(0.4, seed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every placement algorithm returns a capacity-feasible, total
    /// placement for any circuit that fits the cloud.
    #[test]
    fn placements_are_total_and_feasible(
        qubits in 4usize..30,
        gates in 1usize..60,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let algos: Vec<Box<dyn PlacementAlgorithm>> = vec![
            Box::new(CloudQcPlacement::default()),
            Box::new(CloudQcBfsPlacement::default()),
            Box::new(RandomPlacement),
        ];
        for algo in &algos {
            let status = cloud.status();
            let p = algo.place(&circuit, &cloud, &status, seed).unwrap();
            prop_assert_eq!(p.num_qubits(), qubits);
            prop_assert!(p.fits(&status), "{} violated capacity", algo.name());
        }
    }

    /// The remote DAG matches the cost metric and is acyclic under any
    /// placement.
    #[test]
    fn remote_dag_invariants(
        qubits in 4usize..24,
        gates in 1usize..50,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let p = RandomPlacement.place(&circuit, &cloud, &cloud.status(), seed).unwrap();
        let rd = RemoteDag::new(&circuit, &p, &cloud);
        prop_assert_eq!(rd.node_count(), cost::remote_op_count(&circuit, &p));
        prop_assert!(rd.dag().is_acyclic());
        // Remote DAG dependencies never invert circuit order.
        for n in 0..rd.node_count() {
            for &succ in rd.dag().successors(n) {
                prop_assert!(rd.gate_index(succ) > rd.gate_index(n));
            }
        }
    }

    /// Execution terminates with a sane completion time under every
    /// scheduler, and is deterministic per seed.
    #[test]
    fn execution_terminates_and_is_deterministic(
        qubits in 4usize..20,
        gates in 1usize..40,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), seed)
            .unwrap();
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GreedyScheduler),
            Box::new(AverageScheduler),
            Box::new(RandomScheduler),
            Box::new(CloudQcScheduler),
        ];
        for sched in &scheds {
            let a = simulate_job(&circuit, &p, &cloud, sched.as_ref(), seed);
            let b = simulate_job(&circuit, &p, &cloud, sched.as_ref(), seed);
            prop_assert_eq!(&a, &b, "{} nondeterministic", sched.name());
            // JCT is at least the local critical path of any gate chain
            // and finite.
            prop_assert!(a.finished_at >= a.started_at);
            prop_assert!(a.epr_rounds >= a.remote_gates as u64);
        }
    }

    /// Communication cost dominates the remote-op count (every remote
    /// gate travels at least one hop).
    #[test]
    fn comm_cost_at_least_remote_ops(
        qubits in 4usize..24,
        gates in 1usize..50,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let p = RandomPlacement.place(&circuit, &cloud, &cloud.status(), seed).unwrap();
        let ops = cost::remote_op_count(&circuit, &p) as f64;
        let cost = cost::communication_cost(&circuit, &p, &cloud);
        prop_assert!(cost >= ops);
    }

    /// The per-QPU-pair sharded front layer is a pure optimization:
    /// for every pure scheduler, a contended multi-job run produces
    /// the exact same schedule whether allocation rounds scan only the
    /// dirty shards or the whole global request set.
    #[test]
    fn sharded_and_global_front_layers_agree(
        qubits in 4usize..20,
        gates in 1usize..40,
        shape in 0u8..3,
        seed in any::<u64>(),
        jobs in 1usize..4,
    ) {
        let cloud = small_cloud(seed);
        let placed: Vec<(Circuit, _)> = (0..jobs)
            .map(|j| {
                let circuit = random_circuit(qubits, gates, shape, seed ^ (j as u64) << 7);
                // Random placements spread qubits across QPUs, filling
                // many distinct shards.
                let p = RandomPlacement
                    .place(&circuit, &cloud, &cloud.status(), seed ^ (j as u64))
                    .unwrap();
                (circuit, p)
            })
            .collect();
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GreedyScheduler),
            Box::new(AverageScheduler),
            Box::new(CloudQcScheduler),
        ];
        for sched in &scheds {
            let run = |sharded: bool| {
                let mut exec = Executor::new(&cloud, sched.as_ref(), seed)
                    .with_sharded_front_layer(sharded);
                let ids: Vec<usize> = placed.iter().map(|(c, p)| exec.add_job(c, p)).collect();
                exec.run_to_completion();
                let results: Vec<_> = ids
                    .into_iter()
                    .map(|id| exec.job_result(id).expect("job finished"))
                    .collect();
                (results, exec.now(), exec.comm_free().to_vec())
            };
            prop_assert_eq!(run(true), run(false), "{} diverged under sharding", sched.name());
        }
    }

    /// Parallel shard-component evaluation is exact for arbitrary
    /// circuits, clouds, and worker counts: the executor's worker pool
    /// must reproduce the serial schedule byte for byte for every pure
    /// scheduler.
    #[test]
    fn parallel_and_serial_executors_agree(
        qubits in 4usize..20,
        gates in 1usize..40,
        shape in 0u8..3,
        seed in any::<u64>(),
        jobs in 1usize..4,
        workers in 2usize..9,
    ) {
        let cloud = small_cloud(seed);
        let placed: Vec<(Circuit, _)> = (0..jobs)
            .map(|j| {
                let circuit = random_circuit(qubits, gates, shape, seed ^ (j as u64) << 7);
                let p = RandomPlacement
                    .place(&circuit, &cloud, &cloud.status(), seed ^ (j as u64))
                    .unwrap();
                (circuit, p)
            })
            .collect();
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GreedyScheduler),
            Box::new(AverageScheduler),
            Box::new(CloudQcScheduler),
        ];
        for sched in &scheds {
            let run = |threads: usize| {
                let mut exec = Executor::new(&cloud, sched.as_ref(), seed)
                    .with_worker_threads(threads);
                let ids: Vec<usize> = placed.iter().map(|(c, p)| exec.add_job(c, p)).collect();
                exec.run_to_completion();
                let results: Vec<_> = ids
                    .into_iter()
                    .map(|id| exec.job_result(id).expect("job finished"))
                    .collect();
                (results, exec.now(), exec.comm_free().to_vec())
            };
            prop_assert_eq!(
                run(workers),
                run(1),
                "{} diverged at {} workers",
                sched.name(),
                workers
            );
        }
    }

    /// A placement-cache hit and a cold run of the algorithm return
    /// identical placements for the same (fingerprint, free-vector,
    /// seed) signature — the exactness the runtime's byte-identical
    /// schedule guarantee rests on.
    #[test]
    fn cache_hit_equals_cold_placement(
        qubits in 4usize..30,
        gates in 1usize..60,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let algo = CloudQcPlacement::default();
        let status = cloud.status();
        let mut cache = PlacementCache::new();
        let first = cache.place(&algo, &circuit, &cloud, &status, seed).unwrap();
        let hit = cache.place(&algo, &circuit, &cloud, &status, seed).unwrap();
        let cold = algo.place(&circuit, &cloud, &status, seed).unwrap();
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(&first, &hit);
        prop_assert_eq!(&hit, &cold);
    }

    /// Under a coarse quantization bucket, capacity drifting *within*
    /// a bucket reuses cached entries — but a reused placement must
    /// still fit the actual status: below-threshold capacity changes
    /// never cause an infeasible reuse.
    #[test]
    fn quantized_cache_reuse_stays_feasible(
        qubits in 4usize..24,
        gates in 1usize..40,
        shape in 0u8..3,
        seed in any::<u64>(),
        quantum in 2usize..6,
        steps in 1usize..8,
    ) {
        use cloudqc::cloud::QpuId;
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let algo = CloudQcPlacement::default();
        let mut cache = PlacementCache::with_quantum(quantum);
        let mut status = cloud.status();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        for _ in 0..steps {
            // Random walk over the free-capacity vector, crossing and
            // staying within quantization buckets alike.
            for i in 0..cloud.qpu_count() {
                let qpu = QpuId::new(i);
                let free = status.free_computing(qpu);
                let held = status.computing_capacity(qpu) - free;
                if rng.random_range(0..2) == 0 && free > 0 {
                    let n = rng.random_range(1..=free.min(quantum));
                    status.allocate_computing(qpu, n).unwrap();
                } else if held > 0 {
                    let n = rng.random_range(1..=held);
                    status.release_computing(qpu, n);
                }
            }
            if let Ok(p) = cache.place(&algo, &circuit, &cloud, &status, seed) {
                prop_assert!(
                    p.fits(&status),
                    "quantum {} reused an infeasible placement", quantum
                );
            }
        }
        prop_assert!(cache.stats().hits + cache.stats().misses >= steps as u64);
    }

    /// `placement::repair` preserves exactness by construction: for any
    /// cached placement and any drifted free-capacity vector, a `Some`
    /// repair always satisfies the same `fits` guard cache hits are
    /// re-validated with, a still-fitting placement comes back
    /// unchanged, and repairing is deterministic.
    #[test]
    fn repair_output_always_fits(
        qubits in 4usize..30,
        gates in 1usize..40,
        shape in 0u8..3,
        seed in any::<u64>(),
        steps in 1usize..6,
    ) {
        use cloudqc::cloud::QpuId;
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let cached = RandomPlacement
            .place(&circuit, &cloud, &cloud.status(), seed)
            .unwrap();
        let mut status = cloud.status();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7);
        for _ in 0..steps {
            // Drift the ledger away from the one the placement was made
            // against.
            for i in 0..cloud.qpu_count() {
                let qpu = QpuId::new(i);
                let free = status.free_computing(qpu);
                let held = status.computing_capacity(qpu) - free;
                if rng.random_range(0..2) == 0 && free > 0 {
                    let n = rng.random_range(1..=free);
                    status.allocate_computing(qpu, n).unwrap();
                } else if held > 0 {
                    let n = rng.random_range(1..=held);
                    status.release_computing(qpu, n);
                }
            }
            match repair(&cached, &status) {
                Some(patched) => {
                    prop_assert!(patched.fits(&status), "repair returned an unfit placement");
                    prop_assert_eq!(patched.num_qubits(), cached.num_qubits());
                    if cached.fits(&status) {
                        prop_assert_eq!(&patched, &cached, "harmless drift must not be patched");
                    }
                    prop_assert_eq!(repair(&cached, &status), Some(patched), "repair must be pure");
                }
                None => prop_assert!(
                    !cached.fits(&status),
                    "a fitting placement must always repair (to itself)"
                ),
            }
        }
    }

    /// The repair tier is byte-invisible until a near-miss actually
    /// patches: driving the same lookup sequence through a
    /// repair-enabled and a repair-disabled cache returns identical
    /// results at every step where the enabled cache has repaired
    /// nothing yet — and once it does repair, every reused placement
    /// still fits the live status.
    #[test]
    fn repair_tier_without_repairs_is_byte_identical(
        qubits in 4usize..24,
        gates in 1usize..40,
        shape in 0u8..3,
        seed in any::<u64>(),
        steps in 1usize..8,
    ) {
        use cloudqc::cloud::QpuId;
        let circuit = random_circuit(qubits, gates, shape, seed);
        let cloud = small_cloud(seed);
        let algo = CloudQcPlacement::default();
        let mut plain = PlacementCache::new();
        let mut repairing = PlacementCache::new().with_repair(true);
        let mut status = cloud.status();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        for _ in 0..steps {
            for i in 0..cloud.qpu_count() {
                let qpu = QpuId::new(i);
                let free = status.free_computing(qpu);
                let held = status.computing_capacity(qpu) - free;
                if rng.random_range(0..2) == 0 && free > 0 {
                    let n = rng.random_range(1..=free.min(2));
                    status.allocate_computing(qpu, n).unwrap();
                } else if held > 0 {
                    let n = rng.random_range(1..=held);
                    status.release_computing(qpu, n);
                }
            }
            let a = plain.place(&algo, &circuit, &cloud, &status, seed);
            let b = repairing.place(&algo, &circuit, &cloud, &status, seed);
            if repairing.stats().repair_hits == 0 {
                prop_assert_eq!(&a, &b, "repair tier changed a non-repaired lookup");
            }
            if let Ok(p) = &b {
                prop_assert!(p.fits(&status), "repair-enabled cache reused an unfit placement");
            }
        }
        // Fallbacks re-run the pipeline, so they never change results —
        // only repair hits can. The disabled cache must never count
        // either.
        prop_assert_eq!(plain.stats().repair_hits, 0);
        prop_assert_eq!(plain.stats().repair_fallbacks, 0);
    }
}

/// Golden for the repair tier through the public cache API: warm the
/// cache, drift the status within one quantization bucket so the cached
/// placement no longer fits, and pin that the lookup is answered by the
/// repair tier (not the pipeline), that the patch is feasible, and that
/// the patched entry is memoized for the next identical lookup.
#[test]
fn near_miss_golden_is_repaired_without_recompute() {
    use cloudqc::core::placement::CacheStats;

    let cloud = CloudBuilder::new(2)
        .computing_qubits(4)
        .communication_qubits(2)
        .build();
    let circuit = random_circuit(4, 6, 0, 11);
    let algo = CloudQcPlacement::default();
    // Coarse quantum: both statuses below share one signature bucket,
    // so the stale warm entry is a distance-zero near-miss candidate.
    let mut cache = PlacementCache::with_quantum(8).with_repair(true);

    let full = cloud.status();
    let cold = cache.place(&algo, &circuit, &cloud, &full, 7).unwrap();
    assert!(cold.fits(&full));

    // Take enough of a used QPU away that the warm placement is one
    // qubit short there.
    let qpu = cold.used_qpus()[0];
    let demand = cold.qpu_demand(cloud.qpu_count())[qpu.index()];
    let mut drifted = cloud.status();
    let free = drifted.free_computing(qpu);
    drifted.allocate_computing(qpu, free - demand + 1).unwrap();
    assert!(!cold.fits(&drifted));

    let patched = cache.place(&algo, &circuit, &cloud, &drifted, 7).unwrap();
    assert!(patched.fits(&drifted));
    assert_ne!(
        patched, cold,
        "an unfit warm entry cannot be returned as-is"
    );
    assert_eq!(
        cache.stats(),
        CacheStats {
            hits: 0,
            misses: 1,
            evictions: 0,
            repair_hits: 1,
            repair_fallbacks: 0,
        },
        "the drifted lookup must be answered by repair, not the pipeline"
    );

    // The patch was memoized under the drifted signature: replaying the
    // lookup is an exact hit returning the identical placement.
    let replay = cache.place(&algo, &circuit, &cloud, &drifted, 7).unwrap();
    assert_eq!(replay, patched);
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().repair_hits, 1);
}
