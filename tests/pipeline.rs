//! End-to-end pipeline integration tests spanning every crate:
//! catalog → interaction graph → placement → remote DAG → scheduling →
//! discrete-event execution.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::interaction::interaction_graph;
use cloudqc::cloud::{CloudBuilder, QpuId};
use cloudqc::core::placement::{
    cost, CloudQcBfsPlacement, CloudQcPlacement, PlacementAlgorithm, RandomPlacement,
};
use cloudqc::core::schedule::{priority::priorities, CloudQcScheduler, RemoteDag};
use cloudqc::core::simulate_job;

#[test]
fn full_pipeline_is_deterministic() {
    let cloud = CloudBuilder::paper_default(3).build();
    let circuit = catalog::by_name("qugan_n39").unwrap();
    let run = |seed: u64| {
        let p = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), seed)
            .unwrap();
        let r = simulate_job(&circuit, &p, &cloud, &CloudQcScheduler, seed);
        (p, r)
    };
    let (p1, r1) = run(11);
    let (p2, r2) = run(11);
    assert_eq!(p1, p2);
    assert_eq!(r1, r2);
}

#[test]
fn cloudqc_beats_random_placement_on_structured_circuits() {
    // The headline single-circuit claim (Table III): CloudQC induces
    // far fewer remote operations than random placement on circuits
    // with exploitable structure.
    let cloud = CloudBuilder::paper_default(5).build();
    for name in ["ghz_n127", "cat_n65", "ising_n66", "adder_n64", "qugan_n71"] {
        let circuit = catalog::by_name(name).unwrap();
        let cq = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 1)
            .unwrap();
        let rnd = RandomPlacement
            .place(&circuit, &cloud, &cloud.status(), 1)
            .unwrap();
        let cq_ops = cost::remote_op_count(&circuit, &cq);
        let rnd_ops = cost::remote_op_count(&circuit, &rnd);
        assert!(
            (cq_ops as f64) < 0.5 * rnd_ops as f64,
            "{name}: CloudQC {cq_ops} vs Random {rnd_ops}"
        );
    }
}

#[test]
fn placement_never_overfills_qpus() {
    let cloud = CloudBuilder::paper_default(7).build();
    for name in ["knn_n67", "qft_n63", "cat_n130", "bv_n140"] {
        let circuit = catalog::by_name(name).unwrap();
        for algo in [
            &CloudQcPlacement::default() as &dyn PlacementAlgorithm,
            &CloudQcBfsPlacement::default(),
            &RandomPlacement,
        ] {
            let status = cloud.status();
            let p = algo.place(&circuit, &cloud, &status, 2).unwrap();
            assert!(p.fits(&status), "{name}/{}", algo.name());
            let demand = p.qpu_demand(cloud.qpu_count());
            assert_eq!(demand.iter().sum::<usize>(), circuit.num_qubits());
        }
    }
}

#[test]
fn remote_dag_is_consistent_with_placement() {
    let cloud = CloudBuilder::paper_default(9).build();
    let circuit = catalog::by_name("adder_n64").unwrap();
    let p = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 4)
        .unwrap();
    let rd = RemoteDag::new(&circuit, &p, &cloud);
    // Node count equals the cost metric.
    assert_eq!(rd.node_count(), cost::remote_op_count(&circuit, &p));
    // Every node's endpoints really differ and match the placement.
    for n in 0..rd.node_count() {
        let (a, b) = rd.endpoints(n);
        assert_ne!(a, b);
        let gate = circuit.gates()[rd.gate_index(n)];
        let (qa, qb) = gate.qubit_pair().expect("remote gates are two-qubit");
        assert_eq!(p.qpu_of(qa.index()), a);
        assert_eq!(p.qpu_of(qb.index()), b);
        assert!(rd.hops(n) >= 1);
    }
    // Priorities are bounded by the node count and the DAG is acyclic.
    let prio = priorities(&rd);
    assert!(rd.dag().is_acyclic());
    assert!(prio.iter().all(|&p| p < rd.node_count().max(1)));
}

#[test]
fn single_qpu_job_needs_no_network() {
    let cloud = CloudBuilder::paper_default(2).build();
    let circuit = catalog::by_name("vqe_n16").unwrap();
    let p = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 3)
        .unwrap();
    assert!(p.is_single_qpu());
    let r = simulate_job(&circuit, &p, &cloud, &CloudQcScheduler, 3);
    assert_eq!(r.remote_gates, 0);
    assert_eq!(r.epr_rounds, 0);
}

#[test]
fn interaction_graph_edge_weights_bound_remote_ops() {
    // Remote ops can never exceed the total interaction weight.
    let cloud = CloudBuilder::paper_default(13).build();
    let circuit = catalog::by_name("swap_test_n115").unwrap();
    let ig = interaction_graph(&circuit);
    let p = RandomPlacement
        .place(&circuit, &cloud, &cloud.status(), 8)
        .unwrap();
    let remote = cost::remote_op_count(&circuit, &p);
    assert!(remote as f64 <= ig.total_edge_weight());
}

#[test]
fn occupied_cloud_shifts_placement() {
    let cloud = CloudBuilder::paper_default(17).build();
    let circuit = catalog::by_name("cat_n65").unwrap();
    let mut status = cloud.status();
    let p1 = CloudQcPlacement::default()
        .place(&circuit, &cloud, &status, 5)
        .unwrap();
    // Occupy what the first placement used.
    status
        .allocate_all_computing(&p1.qpu_demand(cloud.qpu_count()))
        .unwrap();
    let p2 = CloudQcPlacement::default()
        .place(&circuit, &cloud, &status, 5)
        .unwrap();
    assert!(p2.fits(&status));
    // The second placement avoids the exhausted qubits: combined demand
    // never exceeds capacity.
    let d1 = p1.qpu_demand(cloud.qpu_count());
    let d2 = p2.qpu_demand(cloud.qpu_count());
    for i in 0..cloud.qpu_count() {
        assert!(
            d1[i] + d2[i] <= cloud.qpu(QpuId::new(i)).computing_qubits(),
            "QPU{i} over-committed"
        );
    }
}
