//! Scheduler contract tests: no QPU's communication qubits are ever
//! oversubscribed, for all four allocation policies.
//!
//! Two layers of coverage:
//!
//! 1. A wrapper [`Scheduler`] intercepts **every allocation round** of
//!    a real, contended multi-tenant run and checks
//!    [`validate_allocations`] on it.
//! 2. A property test hammers each policy directly with arbitrary
//!    request sets and availability vectors.

use std::sync::atomic::{AtomicUsize, Ordering};

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::{CloudBuilder, QpuId};
use cloudqc::core::batch::OrderingPolicy;
use cloudqc::core::placement::CloudQcPlacement;
use cloudqc::core::schedule::{
    validate_allocations, Allocation, AverageScheduler, CloudQcScheduler, GreedyScheduler,
    RandomScheduler, RemoteRequest, Scheduler,
};
use cloudqc::core::tenant::run_multi_tenant;
use proptest::prelude::*;
use rand::rngs::StdRng;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(CloudQcScheduler),
        Box::new(GreedyScheduler),
        Box::new(AverageScheduler),
        Box::new(RandomScheduler),
    ]
}

/// Delegates to `inner`, validating every round's allocations.
struct ValidatingScheduler<'a> {
    inner: &'a dyn Scheduler,
    rounds: AtomicUsize,
    contended_rounds: AtomicUsize,
}

impl<'a> ValidatingScheduler<'a> {
    fn new(inner: &'a dyn Scheduler) -> Self {
        ValidatingScheduler {
            inner,
            rounds: AtomicUsize::new(0),
            contended_rounds: AtomicUsize::new(0),
        }
    }
}

impl Scheduler for ValidatingScheduler<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn allocate(
        &self,
        requests: &[RemoteRequest],
        available: &[usize],
        rng: &mut StdRng,
    ) -> Vec<Allocation> {
        let allocations = self.inner.allocate(requests, available, rng);
        if let Err(violation) = validate_allocations(requests, available, &allocations) {
            panic!(
                "{} violated the allocation contract in round {}: {}",
                self.inner.name(),
                self.rounds.load(Ordering::Relaxed),
                violation
            );
        }
        self.rounds.fetch_add(1, Ordering::Relaxed);
        // A round is contended when demand (one pair per request
        // endpoint, at minimum) could exceed some QPU's free budget.
        let mut wanted = vec![0usize; available.len()];
        for r in requests {
            wanted[r.a.index()] += 1;
            wanted[r.b.index()] += 1;
        }
        if wanted.iter().zip(available).any(|(w, a)| w > a) {
            self.contended_rounds.fetch_add(1, Ordering::Relaxed);
        }
        allocations
    }
}

#[test]
fn no_scheduler_oversubscribes_in_a_contended_multi_tenant_run() {
    // Scarce communication qubits (1 per QPU) + five concurrent jobs
    // spread over 5 QPUs ⇒ plenty of rounds where requests outnumber
    // free pairs.
    let cloud = CloudBuilder::new(5)
        .computing_qubits(8)
        .communication_qubits(1)
        .random_topology(0.5, 17)
        .build();
    let batch: Vec<_> = ["qft_n13", "knn_n13", "ghz_n16", "ising_n14", "adder_n12"]
        .iter()
        .map(|name| catalog::by_name(name).expect("catalog circuit"))
        .collect();
    for sched in schedulers() {
        let validating = ValidatingScheduler::new(sched.as_ref());
        let run = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &validating,
            OrderingPolicy::default(),
            13,
        )
        .expect("batch fits");
        assert_eq!(run.outcomes.len(), batch.len(), "{}", sched.name());
        assert!(
            validating.rounds.load(Ordering::Relaxed) > 0,
            "{}: run never reached the scheduler",
            sched.name()
        );
        assert!(
            validating.contended_rounds.load(Ordering::Relaxed) > 0,
            "{}: run was never contended — test lost its teeth",
            sched.name()
        );
    }
}

/// Strategy: `(availability per QPU, requests)` over a 6-QPU cloud.
fn round_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<RemoteRequest>)> {
    let avail = proptest::collection::vec(0usize..5, 6..7);
    let reqs = proptest::collection::vec(
        (0usize..6, 0usize..6, 0usize..60).prop_map(|(a, b, priority)| (a, b, priority)),
        1..24,
    );
    (avail, reqs).prop_map(|(avail, raw)| {
        let requests: Vec<RemoteRequest> = raw
            .into_iter()
            .enumerate()
            .filter(|(_, (a, b, _))| a != b)
            .map(|(key, (a, b, priority))| RemoteRequest {
                key: key as u64,
                a: QpuId::new(a),
                b: QpuId::new(b),
                priority,
            })
            .collect();
        (avail, requests)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_scheduler_satisfies_the_contract_on_arbitrary_rounds(
        (available, requests) in round_strategy(),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        for sched in schedulers() {
            let mut rng = StdRng::seed_from_u64(seed);
            let allocations = sched.allocate(&requests, &available, &mut rng);
            let verdict = validate_allocations(&requests, &available, &allocations);
            prop_assert!(
                verdict.is_ok(),
                "{} violated the contract: {}",
                sched.name(),
                verdict.unwrap_err()
            );
        }
    }
}
