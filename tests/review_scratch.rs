//! Review scratch: what happens when EVERY backend (all healthy)
//! rejects a job with a reroutable error?

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::CloudQcPlacement;
use cloudqc::core::runtime::{FleetBuilder, ServiceBuilder};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::sim::Tick;

#[test]
fn all_backends_reject_a_job() {
    // Both backends have zero communication qubits: any job that must
    // split across QPUs is rejected on both. Module docs claim: "A job
    // every eligible backend has turned away is finally rejected with
    // the last error."
    let starved = |_| {
        CloudBuilder::new(2)
            .computing_qubits(20)
            .communication_qubits(0)
            .line_topology()
            .build()
    };
    let a = starved(0);
    let b = starved(1);
    let placement = CloudQcPlacement::default();
    let mut fleet = FleetBuilder::new()
        .backend(ServiceBuilder::new(&a, &placement, &CloudQcScheduler, 5))
        .backend(ServiceBuilder::new(&b, &placement, &CloudQcScheduler, 5))
        .build();
    fleet.submit(catalog::by_name("ghz_n30").unwrap(), Tick::ZERO);
    let window = fleet.drive_to_quiescence().unwrap();
    eprintln!(
        "quiescent={} outcomes={} rejected={} orphans={} unresolved={}",
        window.quiescent,
        window.outcomes.len(),
        window.rejected.len(),
        fleet.orphans(),
        fleet.unresolved()
    );
    assert_eq!(
        window.rejected.len(),
        1,
        "docs promise a final rejection with the last error"
    );
    assert!(window.quiescent);
}
