//! Integration tests for the extensions beyond the paper's evaluation:
//! link reliability (paper §V.B future-work remark), heterogeneous
//! QPUs, and incoming-job mode.

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::{CloudBuilder, Qpu, QpuId};
use cloudqc::core::placement::{CloudQcPlacement, PlacementAlgorithm};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::simulate_job;
use cloudqc::core::tenant::{poisson_arrivals, run_incoming};
use cloudqc::sim::Tick;

#[test]
fn poor_links_slow_jobs_down() {
    let circuit = catalog::by_name("qugan_n39").unwrap();
    let reps = 8;
    let mean_jct = |reliability: Option<(f64, f64)>| -> f64 {
        let mut total = 0.0;
        for rep in 0..reps {
            let mut builder = CloudBuilder::paper_default(rep);
            if let Some((lo, hi)) = reliability {
                builder = builder.link_reliability_range(lo, hi, rep);
            }
            let cloud = builder.build();
            let p = CloudQcPlacement::default()
                .place(&circuit, &cloud, &cloud.status(), rep)
                .unwrap();
            total += simulate_job(&circuit, &p, &cloud, &CloudQcScheduler, rep)
                .completion_time
                .as_ticks() as f64;
        }
        total / reps as f64
    };
    let perfect = mean_jct(None);
    let poor = mean_jct(Some((0.3, 0.5)));
    assert!(
        poor > perfect * 1.1,
        "poor links ({poor}) should be >10% slower than perfect ({perfect})"
    );
}

#[test]
fn heterogeneous_cloud_respects_per_qpu_capacity() {
    // One big QPU and several small ones: a 30-qubit circuit must put at
    // most 8 qubits on each small QPU.
    let qpus = vec![
        Qpu::new(40, 5),
        Qpu::new(8, 5),
        Qpu::new(8, 5),
        Qpu::new(8, 5),
    ];
    let cloud = CloudBuilder::new(4)
        .ring_topology()
        .heterogeneous_qpus(qpus.clone())
        .build();
    let circuit = catalog::by_name("ghz_n50").unwrap();
    let p = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 3)
        .unwrap();
    let demand = p.qpu_demand(4);
    for (i, &d) in demand.iter().enumerate() {
        assert!(
            d <= qpus[i].computing_qubits(),
            "QPU{i}: demand {d} > capacity {}",
            qpus[i].computing_qubits()
        );
    }
    assert_eq!(demand.iter().sum::<usize>(), 50);
}

#[test]
fn incoming_mode_with_poisson_arrivals_completes() {
    let cloud = CloudBuilder::paper_default(5).build();
    let pool = ["qugan_n39", "ising_n34", "bv_n70"];
    let arrivals = poisson_arrivals(6, 2_000.0, 9);
    let jobs: Vec<_> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &t)| (catalog::by_name(pool[i % pool.len()]).unwrap(), t))
        .collect();
    let run = run_incoming(
        &jobs,
        &cloud,
        &CloudQcPlacement::default(),
        &CloudQcScheduler,
        9,
    )
    .unwrap();
    assert_eq!(run.outcomes.len(), 6);
    for o in &run.outcomes {
        assert!(o.admitted_at >= o.arrived_at);
        assert!(o.finished_at > o.arrived_at);
    }
    // Makespan extends past the last arrival.
    assert!(run.makespan >= *arrivals.last().unwrap());
}

#[test]
fn reliability_extension_keeps_placement_feasible() {
    // Community detection with quality-scaled weights must still honor
    // capacity.
    let cloud = CloudBuilder::paper_default(7)
        .link_reliability_range(0.4, 1.0, 7)
        .build();
    let circuit = catalog::by_name("knn_n67").unwrap();
    let status = cloud.status();
    let p = CloudQcPlacement::default()
        .place(&circuit, &cloud, &status, 2)
        .unwrap();
    assert!(p.fits(&status));
    // Reliability values are genuinely heterogeneous.
    let mut distinct = std::collections::BTreeSet::new();
    for a in 0..cloud.qpu_count() {
        for b in 0..cloud.qpu_count() {
            let q = cloud.bottleneck_reliability(QpuId::new(a), QpuId::new(b));
            distinct.insert((q * 1e9) as u64);
        }
    }
    assert!(distinct.len() > 2);
}

#[test]
fn zero_arrival_time_jobs_behave_like_batch() {
    let cloud = CloudBuilder::paper_default(11).build();
    let jobs = vec![
        (catalog::by_name("ising_n34").unwrap(), Tick::ZERO),
        (catalog::by_name("qugan_n39").unwrap(), Tick::ZERO),
    ];
    let run = run_incoming(
        &jobs,
        &cloud,
        &CloudQcPlacement::default(),
        &CloudQcScheduler,
        1,
    )
    .unwrap();
    for o in &run.outcomes {
        assert_eq!(o.arrived_at, Tick::ZERO);
        assert_eq!(o.admitted_at, Tick::ZERO); // both fit an empty cloud
    }
}
