//! Resource-conservation property tests for the runtime layer.
//!
//! After any runtime run — batch or open-arrival, with and without
//! path reservation — every QPU's communication-qubit pool and
//! computing-qubit pool must be back at their initial values: EPR
//! rounds return their pairs and station holds, completions release
//! their placements. A leak in either direction (lost capacity or
//! double release) breaks long-running service.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::Circuit;
use cloudqc::cloud::{Cloud, CloudBuilder, QpuId};
use cloudqc::core::placement::{CloudQcPlacement, PlacementAlgorithm, RandomPlacement};
use cloudqc::core::runtime::{AdmissionPolicy, LoadShedPolicy, Orchestrator, RunReport};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::workload::Workload;
use cloudqc::core::Executor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A pool of small catalog circuits, selected by seed.
fn circuit_pool(selector: u64) -> Vec<Circuit> {
    let names = [
        "vqe_n4",
        "qft_n13",
        "ghz_n16",
        "bv_n12",
        "ising_n14",
        "qugan_n11",
    ];
    let mut picked: Vec<Circuit> = Vec::new();
    let mut rng = StdRng::seed_from_u64(selector);
    for _ in 0..3 {
        let name = names[rng.random_range(0..names.len())];
        picked.push(catalog::by_name(name).expect("catalog circuit"));
    }
    picked
}

fn contended_cloud(seed: u64) -> Cloud {
    CloudBuilder::new(5)
        .computing_qubits(12)
        .communication_qubits(2)
        .random_topology(0.5, seed)
        .build()
}

fn assert_conserved(cloud: &Cloud, report: &RunReport) {
    for i in 0..cloud.qpu_count() {
        let qpu = cloud.qpu(QpuId::new(i));
        assert_eq!(
            report.final_free_computing[i],
            qpu.computing_qubits(),
            "QPU{i} leaked computing qubits"
        );
        assert_eq!(
            report.final_free_communication[i],
            qpu.communication_qubits(),
            "QPU{i} leaked communication qubits"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batch runs conserve both resource pools under every admission
    /// policy, with and without path reservation.
    #[test]
    fn batch_runs_conserve_resources(
        seed in any::<u64>(),
        reservation in any::<bool>(),
        policy_pick in 0u8..3,
    ) {
        let cloud = contended_cloud(seed);
        let placement = CloudQcPlacement::default();
        let policy = match policy_pick {
            0 => AdmissionPolicy::Fcfs,
            1 => AdmissionPolicy::Backfill,
            _ => AdmissionPolicy::default(),
        };
        let report = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
            .with_admission(policy)
            .with_path_reservation(reservation)
            .run(&Workload::batch(circuit_pool(seed)))
            .unwrap();
        prop_assert!(report.rejected.is_empty() || !report.outcomes.is_empty() || report.makespan == cloudqc::sim::Tick::ZERO);
        assert_conserved(&cloud, &report);
    }

    /// Open-arrival (Poisson) runs conserve both resource pools.
    #[test]
    fn open_arrival_runs_conserve_resources(
        seed in any::<u64>(),
        reservation in any::<bool>(),
        mean_gap in 100.0f64..5_000.0,
    ) {
        let cloud = contended_cloud(seed);
        let placement = CloudQcPlacement::default();
        let pool = circuit_pool(seed);
        let workload = Workload::poisson(&pool, 5, mean_gap, seed);
        let report = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
            .with_path_reservation(reservation)
            .run(&workload)
            .unwrap();
        assert_conserved(&cloud, &report);
        // Every job is accounted for: completed or rejected.
        prop_assert_eq!(report.outcomes.len() + report.rejected.len(), workload.len());
    }

    /// Preemptive runs conserve both pools and account for every job.
    /// Deadline-free elephants start first; SLA-critical mice land
    /// mid-flight, suspending the elephants' remote gates (which must
    /// return their communication pairs and later reclaim them), with
    /// admission-time load shedding sometimes rejecting arrivals on
    /// top. No matter how suspension, resumption, shedding, and
    /// completion interleave, nothing leaks and no job is lost or
    /// double-counted.
    #[test]
    fn preemptive_runs_conserve_resources(
        seed in any::<u64>(),
        mean_gap in 50.0f64..2_000.0,
        sla in 500u64..20_000,
        shed_depth in 0usize..6,
    ) {
        let cloud = contended_cloud(seed);
        let placement = CloudQcPlacement::default();
        let elephants = Workload::batch(vec![
            catalog::by_name("ghz_n16").unwrap(),
            catalog::by_name("qft_n13").unwrap(),
        ]);
        let pool = circuit_pool(seed);
        let mice = Workload::poisson(&pool, 5, mean_gap, seed).with_uniform_sla(sla);
        let mut orch = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
            .with_preemption(true);
        if shed_depth > 0 {
            orch = orch.with_load_shedding(LoadShedPolicy::queue_depth(shed_depth));
        }
        let mut svc = orch.into_service();
        svc.submit_workload(&elephants);
        svc.submit_workload(&mice);
        let report = svc.drive().unwrap();
        assert_conserved(&cloud, &report);
        let total = elephants.len() + mice.len();
        prop_assert_eq!(report.outcomes.len() + report.rejected.len(), total);
        // Every job appears exactly once across outcomes and rejections.
        let mut ids: Vec<usize> = report
            .outcomes
            .iter()
            .map(|o| o.job)
            .chain(report.rejected.iter().map(|r| r.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), total);
    }

    /// The bare executor's communication pool balances even for random
    /// (badly distributed) placements that maximize remote traffic.
    #[test]
    fn executor_comm_pool_balances_for_random_placements(
        seed in any::<u64>(),
        jobs in 1usize..4,
    ) {
        let cloud = contended_cloud(seed);
        let pool = circuit_pool(seed);
        let mut exec = Executor::new(&cloud, &CloudQcScheduler, seed);
        for j in 0..jobs {
            let circuit = &pool[j % pool.len()];
            let p = RandomPlacement
                .place(circuit, &cloud, &cloud.status(), seed ^ j as u64)
                .unwrap();
            exec.add_job(circuit, &p);
        }
        exec.run_to_completion();
        let capacities: Vec<usize> = (0..cloud.qpu_count())
            .map(|i| cloud.qpu(QpuId::new(i)).communication_qubits())
            .collect();
        prop_assert_eq!(exec.comm_free(), &capacities[..]);
    }
}
