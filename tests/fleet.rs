//! Federation tests: the fleet-of-1 golden, routing semantics
//! (spillover, backpressure re-routing, orphans), and the failover
//! conservation property.
//!
//! The two load-bearing guarantees pinned here:
//!
//! * **Fleet-of-1 golden**: a `Fleet` with one backend reproduces the
//!   bare `Service` continuous-clock run *byte-identically* — same
//!   outcomes, rejections, clock, quiescence, and cache counters,
//!   window by window. The facade adds routing only where there is a
//!   choice, so with one backend it must add nothing.
//! * **Conservation**: across arbitrary mid-run `fail_backend` /
//!   `recover_backend` sequences, submitted == completed + rejected,
//!   with every fleet job id reported exactly once (property test).

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::error::ExecError;
use cloudqc::core::placement::CloudQcPlacement;
use cloudqc::core::runtime::{
    AdmissionPolicy, FleetBuilder, LoadShedPolicy, RandomRouting, RoundRobin, ServiceBuilder,
    TenantAffinity,
};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::workload::{Workload, WorkloadJob};
use cloudqc::sim::Tick;
use proptest::prelude::*;

fn pool() -> Vec<cloudqc::circuit::Circuit> {
    vec![
        catalog::by_name("qugan_n39").unwrap(),
        catalog::by_name("qft_n29").unwrap(),
        catalog::by_name("ghz_n40").unwrap(),
    ]
}

#[test]
fn fleet_of_one_is_byte_identical_to_the_bare_service() {
    let cloud = CloudBuilder::paper_default(4).build();
    let placement = CloudQcPlacement::default();
    let w = Workload::poisson(&pool(), 8, 2_000.0, 4);

    let mut service = ServiceBuilder::new(&cloud, &placement, &CloudQcScheduler, 6).build();
    let mut fleet = FleetBuilder::new()
        .backend(ServiceBuilder::new(
            &cloud,
            &placement,
            &CloudQcScheduler,
            6,
        ))
        .build();
    service.submit_workload(&w);
    fleet.submit_workload(&w);

    // Drive both in identical budget slices; every window must match
    // field for field, including the pause/resume boundaries.
    let mut windows = 0;
    loop {
        let s = service.drive_for(1_500).unwrap();
        let f = fleet.drive_for(1_500).unwrap();
        assert_eq!(s.outcomes, f.outcomes, "window {windows} outcomes");
        assert_eq!(s.rejected, f.rejected, "window {windows} rejections");
        assert_eq!(s.now, f.now, "window {windows} clock");
        assert_eq!(s.quiescent, f.quiescent, "window {windows} quiescence");
        windows += 1;
        assert!(windows < 10_000, "must terminate");
        if s.quiescent {
            break;
        }
    }
    assert!(windows > 2, "the workload spans several windows");
    // The facade must not have touched the cache either (no probes on
    // a single-backend fleet).
    assert_eq!(service.cache_stats(), fleet.backend(0).cache_stats());
    let report = fleet.report();
    assert_eq!(report.completed, service.report().completed);
    assert_eq!(report.reroutes + report.spillovers + report.failovers, 0);
}

#[test]
fn starved_jobs_spill_over_to_a_capable_backend() {
    // Backend 0 has zero communication qubits: any job that must split
    // across QPUs is rejected there. Backend 1 can run it. The tie on
    // empty load routes to backend 0 first; the rejection must spill
    // the job over instead of losing it.
    let starved = CloudBuilder::new(2)
        .computing_qubits(20)
        .communication_qubits(0)
        .line_topology()
        .build();
    let capable = CloudBuilder::new(2)
        .computing_qubits(20)
        .communication_qubits(5)
        .line_topology()
        .build();
    let placement = CloudQcPlacement::default();
    let mut fleet = FleetBuilder::new()
        .backend(ServiceBuilder::new(
            &starved,
            &placement,
            &CloudQcScheduler,
            5,
        ))
        .backend(ServiceBuilder::new(
            &capable,
            &placement,
            &CloudQcScheduler,
            5,
        ))
        .build();
    fleet.submit(catalog::by_name("ghz_n30").unwrap(), Tick::ZERO);
    let window = fleet.drive_to_quiescence().unwrap();
    assert!(window.quiescent);
    assert_eq!(window.outcomes.len(), 1, "the job must complete somewhere");
    assert!(window.rejected.is_empty());
    let report = fleet.report();
    assert_eq!(report.spillovers, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(
        fleet.backend(1).report().completed,
        1,
        "the capable backend ran it"
    );
}

#[test]
fn load_shed_is_a_backpressure_signal_that_reroutes() {
    // Backend 0 serializes ghz_n25 jobs (one 28-qubit QPU) and sheds
    // beyond one waiter; backend 1 is shed-free. Round-robin forces
    // jobs onto backend 0 until it sheds — the shed must re-route, not
    // reject.
    let tiny = CloudBuilder::new(1).computing_qubits(28).build();
    let open = CloudBuilder::new(2)
        .computing_qubits(28)
        .line_topology()
        .build();
    let placement = CloudQcPlacement::default();
    let mut fleet = FleetBuilder::new()
        .backend(
            ServiceBuilder::new(&tiny, &placement, &CloudQcScheduler, 5)
                .load_shedding(LoadShedPolicy::queue_depth(1)),
        )
        .backend(ServiceBuilder::new(&open, &placement, &CloudQcScheduler, 5))
        .policy(RoundRobin::new())
        .build();
    for _ in 0..6 {
        fleet.submit(catalog::by_name("ghz_n25").unwrap(), Tick::ZERO);
    }
    let window = fleet.drive_to_quiescence().unwrap();
    assert!(window.quiescent);
    assert_eq!(window.outcomes.len(), 6, "every shed job must land");
    assert!(window.rejected.is_empty());
    let report = fleet.report();
    assert!(report.reroutes >= 1, "no shed was rerouted");
    // The backend-level online reports still show the shed events
    // (per-event), while the fleet counters are per-job.
    assert!(fleet.backend(0).online().rejected() >= 1);
    assert_eq!(report.completed, 6);
    assert_eq!(report.rejected, 0);
}

#[test]
fn sla_expiry_is_terminal_not_rerouted() {
    // Both backends serialize the three identical jobs; the SLA budget
    // covers two service times. The third job's deadline expires
    // wherever it queues, so rerouting would be futile — the fleet must
    // reject it once, with the SLA error.
    let a = CloudBuilder::new(1).computing_qubits(28).build();
    let placement = CloudQcPlacement::default();
    let probe = {
        let mut svc = ServiceBuilder::new(&a, &placement, &CloudQcScheduler, 1).build();
        svc.submit(catalog::by_name("ghz_n25").unwrap(), Tick::ZERO);
        svc.drive().unwrap().makespan.as_ticks()
    };
    let w =
        Workload::batch(vec![catalog::by_name("ghz_n25").unwrap(); 3]).with_uniform_sla(probe * 2);
    let mut fleet = FleetBuilder::new()
        .backend(
            ServiceBuilder::new(&a, &placement, &CloudQcScheduler, 1)
                .admission(AdmissionPolicy::DeadlineAware),
        )
        .build();
    fleet.submit_workload(&w);
    let window = fleet.drive_to_quiescence().unwrap();
    assert!(window
        .rejected
        .iter()
        .any(|(_, e)| matches!(e, ExecError::SlaExpired { .. })));
    let report = fleet.report();
    assert_eq!(report.completed + report.rejected, 3);
    assert_eq!(report.reroutes + report.spillovers, 0);
}

#[test]
fn jobs_orphan_while_all_backends_are_down_and_run_after_recovery() {
    let a = CloudBuilder::paper_default(1).build();
    let b = CloudBuilder::paper_default(2).build();
    let placement = CloudQcPlacement::default();
    let mut fleet = FleetBuilder::new()
        .backend(ServiceBuilder::new(&a, &placement, &CloudQcScheduler, 3))
        .backend(ServiceBuilder::new(&b, &placement, &CloudQcScheduler, 3))
        .build();
    fleet.fail_backend(0);
    fleet.fail_backend(1);
    for i in 0..3 {
        fleet.submit(catalog::by_name("qft_n29").unwrap(), Tick::new(i * 100));
    }
    assert_eq!(fleet.orphans(), 3);
    let parked = fleet.drive_to_quiescence().unwrap();
    assert!(!parked.quiescent, "orphans keep the fleet non-quiescent");
    assert!(parked.outcomes.is_empty());
    assert_eq!(fleet.unresolved(), 3);

    fleet.recover_backend(1);
    assert_eq!(fleet.orphans(), 0, "recovery re-routes orphans");
    let window = fleet.drive_to_quiescence().unwrap();
    assert!(window.quiescent);
    assert_eq!(window.outcomes.len(), 3);
    assert_eq!(fleet.unresolved(), 0);
    assert_eq!(fleet.backend(1).report().completed, 3);
}

#[test]
fn tenant_affinity_beats_random_routing_on_cache_hit_rate() {
    // Skewed two-tenant traffic: tenant 0 submits one hot shape three
    // times as often as tenant 1 submits another. Keeping each tenant
    // homed on one backend keeps that backend's placement cache hot for
    // exactly that tenant's (shape, free-capacity) signatures; random
    // routing cold-misses both shapes on both backends and splits each
    // signature stream in half.
    let a = CloudBuilder::paper_default(11).build();
    let b = CloudBuilder::paper_default(12).build();
    let placement = CloudQcPlacement::default();
    let submit_skewed = |fleet: &mut cloudqc::core::runtime::Fleet| {
        for i in 0..32u64 {
            let (tenant, shape) = if i % 4 == 3 {
                (1, "ghz_n40")
            } else {
                (0, "qft_n29")
            };
            let mut job = WorkloadJob::new(catalog::by_name(shape).unwrap(), Tick::new(i * 1_500));
            job.tenant = tenant;
            fleet.submit_job(job);
        }
    };
    let run = |affinity: bool| {
        let mut builder = FleetBuilder::new()
            .backend(ServiceBuilder::new(&a, &placement, &CloudQcScheduler, 9))
            .backend(ServiceBuilder::new(&b, &placement, &CloudQcScheduler, 9));
        builder = if affinity {
            builder.policy(TenantAffinity::new())
        } else {
            builder.policy(RandomRouting::new(9))
        };
        let mut fleet = builder.build();
        submit_skewed(&mut fleet);
        let window = fleet.drive_to_quiescence().unwrap();
        assert!(window.quiescent);
        let report = fleet.report();
        assert_eq!(report.completed, 32, "policy {}", report.policy);
        report.placement_cache.hit_rate()
    };
    let affinity = run(true);
    let random = run(false);
    assert!(
        affinity > random,
        "tenant affinity must beat random routing on cache hit rate: {affinity:.3} vs {random:.3}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Drain-and-migrate conserves jobs: across a mid-run backend
    /// failure and recovery, every submitted job is reported exactly
    /// once as completed or rejected — none lost, none duplicated.
    #[test]
    fn failover_conserves_jobs(
        seed in 0u64..200,
        victim in 0usize..3,
        fail_after in 1u64..5,
        n in 6usize..14,
    ) {
        let a = CloudBuilder::paper_default(seed).build();
        let b = CloudBuilder::new(6)
            .computing_qubits(25)
            .communication_qubits(4)
            .ring_topology()
            .build();
        let c = CloudBuilder::new(10)
            .computing_qubits(15)
            .communication_qubits(3)
            .random_topology(0.4, seed ^ 0xBEEF)
            .build();
        let placement = CloudQcPlacement::default();
        let mut fleet = FleetBuilder::new()
            .backend(ServiceBuilder::new(&a, &placement, &CloudQcScheduler, seed))
            .backend(ServiceBuilder::new(&b, &placement, &CloudQcScheduler, seed ^ 1))
            .backend(ServiceBuilder::new(&c, &placement, &CloudQcScheduler, seed ^ 2))
            .build();
        fleet.submit_workload(&Workload::poisson(&pool(), n, 1_000.0, seed));

        let mut outcomes = Vec::new();
        let mut rejected = Vec::new();
        let mut slices = 0u64;
        loop {
            let window = fleet.drive_for(1_200).unwrap();
            outcomes.extend(window.outcomes);
            rejected.extend(window.rejected);
            slices += 1;
            prop_assert!(slices < 10_000, "must make progress");
            if slices == fail_after {
                let evacuated = fleet.fail_backend(victim);
                // Evacuation itself must not complete or reject.
                prop_assert!(fleet.unresolved() >= evacuated as u64);
            }
            if slices == fail_after + 2 {
                fleet.recover_backend(victim);
            }
            if window.quiescent && slices > fail_after + 2 {
                break;
            }
        }
        // Conservation: exactly once each, nothing unresolved.
        prop_assert_eq!(fleet.unresolved(), 0);
        prop_assert_eq!(outcomes.len() + rejected.len(), n);
        let mut seen: Vec<usize> = outcomes
            .iter()
            .map(|o| o.job)
            .chain(rejected.iter().map(|(id, _)| *id))
            .collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(seen, expected, "every job exactly once");
        let report = fleet.report();
        prop_assert_eq!(report.completed as usize, outcomes.len());
        prop_assert_eq!(report.rejected as usize, rejected.len());
        prop_assert_eq!(report.failovers, 1);
    }
}
