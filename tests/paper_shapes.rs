//! Scaled-down assertions of the paper's headline experimental claims
//! (the full-scale versions are the `cloudqc-experiments` binaries).

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::{cost, CloudQcPlacement, PlacementAlgorithm, RandomPlacement};
use cloudqc::core::schedule::{
    AverageScheduler, CloudQcScheduler, GreedyScheduler, RandomScheduler, Scheduler,
};
use cloudqc::core::simulate_job;

fn mean_jct(
    circuit: &cloudqc::circuit::Circuit,
    placement: &cloudqc::core::placement::Placement,
    cloud: &cloudqc::cloud::Cloud,
    sched: &dyn Scheduler,
    reps: u64,
) -> f64 {
    (0..reps)
        .map(|s| {
            simulate_job(circuit, placement, cloud, sched, s)
                .completion_time
                .as_ticks() as f64
        })
        .sum::<f64>()
        / reps as f64
}

/// Table III's claim, in miniature: CloudQC's placement induces fewer
/// remote operations than Random on every structured benchmark.
#[test]
fn shape_table3_cloudqc_not_worse_than_random() {
    let cloud = CloudBuilder::paper_default(2).build();
    for name in ["ghz_n127", "ising_n98", "qugan_n71", "adder_n64", "knn_n67"] {
        let circuit = catalog::by_name(name).unwrap();
        let cq = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 0)
            .unwrap();
        let rnd = RandomPlacement
            .place(&circuit, &cloud, &cloud.status(), 0)
            .unwrap();
        assert!(
            cost::remote_op_count(&circuit, &cq) <= cost::remote_op_count(&circuit, &rnd),
            "{name}"
        );
    }
}

/// Fig. 22's claim: on DAG-heavy circuits the Greedy scheduler is the
/// worst, and CloudQC is no worse than Greedy. (qft_n29 keeps the
/// debug-mode runtime reasonable.)
#[test]
fn shape_fig22_greedy_worst_on_dag_heavy_circuits() {
    let cloud = CloudBuilder::paper_default(4).build();
    let circuit = catalog::by_name("qft_n29").unwrap();
    let placement = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 1)
        .unwrap();
    let reps = 5;
    let greedy = mean_jct(&circuit, &placement, &cloud, &GreedyScheduler, reps);
    let cloudqc = mean_jct(&circuit, &placement, &cloud, &CloudQcScheduler, reps);
    let average = mean_jct(&circuit, &placement, &cloud, &AverageScheduler, reps);
    assert!(
        cloudqc <= greedy * 1.02,
        "CloudQC {cloudqc} should not lose to Greedy {greedy}"
    );
    assert!(
        cloudqc <= average * 1.10,
        "CloudQC {cloudqc} should be within 10% of Average {average}"
    );
}

/// Figs. 18–21's claim: increasing EPR success probability decreases
/// job completion time.
#[test]
fn shape_fig18_21_jct_decreases_with_epr_probability() {
    let circuit = catalog::by_name("qugan_n39").unwrap();
    let reps = 6;
    let mut means = Vec::new();
    for p in [0.1, 0.3, 0.5] {
        let cloud = CloudBuilder::paper_default(6).epr_success_prob(p).build();
        let placement = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 2)
            .unwrap();
        means.push(mean_jct(
            &circuit,
            &placement,
            &cloud,
            &CloudQcScheduler,
            reps,
        ));
    }
    assert!(
        means[0] > means[1] && means[1] > means[2],
        "JCT not decreasing in p: {means:?}"
    );
}

/// Figs. 10–13's claim: more communication qubits reduce completion
/// time (monotone within noise across the sweep's endpoints).
#[test]
fn shape_fig10_13_more_comm_qubits_help() {
    let circuit = catalog::by_name("qft_n29").unwrap();
    let reps = 5;
    let jct_at = |comm: usize| {
        let cloud = CloudBuilder::new(20)
            .communication_qubits(comm)
            .random_topology(0.3, 8)
            .build();
        let placement = CloudQcPlacement::default()
            .place(&circuit, &cloud, &cloud.status(), 3)
            .unwrap();
        mean_jct(&circuit, &placement, &cloud, &CloudQcScheduler, reps)
    };
    let low = jct_at(2);
    let high = jct_at(10);
    assert!(
        high < low,
        "10 comm qubits ({high}) not faster than 2 ({low})"
    );
}

/// §VI.C's premise: all four schedulers are correct (same workload
/// completes; only time differs).
#[test]
fn shape_all_schedulers_are_functionally_equivalent() {
    let cloud = CloudBuilder::paper_default(10).build();
    let circuit = catalog::by_name("ising_n66").unwrap();
    let placement = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 4)
        .unwrap();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GreedyScheduler),
        Box::new(AverageScheduler),
        Box::new(RandomScheduler),
        Box::new(CloudQcScheduler),
    ];
    for sched in &schedulers {
        let r = simulate_job(&circuit, &placement, &cloud, sched.as_ref(), 11);
        assert_eq!(
            r.remote_gates,
            cost::remote_op_count(&circuit, &placement),
            "{}",
            sched.name()
        );
        assert!(r.epr_rounds >= r.remote_gates as u64, "{}", sched.name());
    }
}
