//! Property tests for the radix-ladder calendar [`EventQueue`]
//! against the retired binary-heap implementation as a reference
//! model.
//!
//! The executor's determinism contract hangs on the queue's total
//! order: events pop by `(time, seq)` — earliest tick first, FIFO
//! within a tick. The calendar queue reproduces that order *by
//! construction* (FIFO buckets, cascades that preserve push order)
//! rather than by comparison, so these tests drive both queues through
//! identical interleaved push/pop scripts and demand identical pop
//! sequences, including the regimes where the ladder's bookkeeping is
//! nontrivial: same-tick FIFO bursts (seq order must survive), large
//! tick gaps (multi-level cascades), and pushes at or below the last
//! popped time (rewind).
//!
//! Run directly with:
//!
//! ```text
//! CLOUDQC_THREADS=1 cargo test --release -q --test event_loop
//! ```

use cloudqc::sim::{EventQueue, ReferenceEventQueue, Tick};
use proptest::prelude::*;

/// One scripted queue operation. Pop scripts carry no payload; push
/// times are deltas so scripts stay meaningful as the queue drains.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `last popped time + delta` — the executor's regime,
    /// where new events never predate the event being handled.
    Push { delta: u64 },
    /// Pop once; a no-op on an empty queue (both queues agree on
    /// emptiness by the length invariant).
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Small deltas: dense traffic, heavy same-tick collisions.
        4 => (0u64..4).prop_map(|delta| Op::Push { delta }),
        // Mid-range deltas: typical event-loop spacing.
        2 => (0u64..1_000).prop_map(|delta| Op::Push { delta }),
        // Huge gaps: force placements in the ladder's upper levels
        // and multi-level cascades on the way back down.
        1 => (1u64 << 40..1u64 << 52).prop_map(|delta| Op::Push { delta }),
        3 => Just(Op::Pop),
    ]
}

/// Drives both queues through one script and asserts identical
/// observable behaviour after every step.
fn run_script(ops: Vec<Op>, payload_stride: u64) -> Result<(), String> {
    let mut calendar = EventQueue::new();
    let mut reference = ReferenceEventQueue::new();
    let mut now = 0u64;
    let mut payload = 0u64;
    for op in ops {
        match op {
            Op::Push { delta } => {
                let t = Tick::new(now.saturating_add(delta));
                calendar.push(t, payload);
                reference.push(t, payload);
                payload += payload_stride;
            }
            Op::Pop => {
                let a = calendar.pop();
                let b = reference.pop();
                prop_assert_eq!(a, b, "pop sequences diverged");
                if let Some((t, _)) = a {
                    now = t.as_ticks();
                }
            }
        }
        prop_assert_eq!(calendar.len(), reference.len());
        prop_assert_eq!(calendar.peek_time(), reference.peek_time());
    }
    // Drain: every remaining event must come out in the same order.
    while let Some(expected) = reference.pop() {
        prop_assert_eq!(calendar.pop(), Some(expected));
    }
    prop_assert!(calendar.is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calendar_queue_matches_heap_reference(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_script(ops, 1)?;
    }

    #[test]
    fn same_tick_bursts_pop_in_fifo_order(
        bursts in prop::collection::vec((0u64..16, 1usize..24), 1..24),
    ) {
        // Clusters of events on a handful of ticks: FIFO within a tick
        // is the part a comparison-free queue could silently get wrong.
        let mut calendar = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        let mut payload = 0u64;
        for (tick, count) in bursts {
            for _ in 0..count {
                calendar.push(Tick::new(tick), payload);
                reference.push(Tick::new(tick), payload);
                payload += 1;
            }
        }
        while let Some(expected) = reference.pop() {
            prop_assert_eq!(calendar.pop(), Some(expected));
        }
        prop_assert!(calendar.is_empty());
    }

    #[test]
    fn pushes_below_the_last_pop_rewind_correctly(
        times in prop::collection::vec(0u64..64, 2..64),
    ) {
        // Absolute (not delta) times from a tiny domain: after the
        // first pop, later pushes routinely land at or below the last
        // popped tick, exercising the rewind path against the heap,
        // with pops interleaved every other push.
        let mut calendar = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            calendar.push(Tick::new(t), i);
            reference.push(Tick::new(t), i);
            if i % 2 == 1 {
                prop_assert_eq!(calendar.pop(), reference.pop());
            }
        }
        while let Some(expected) = reference.pop() {
            prop_assert_eq!(calendar.pop(), Some(expected));
        }
        prop_assert!(calendar.is_empty());
    }
}
