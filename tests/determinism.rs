//! Determinism regression tests.
//!
//! The executor's contract (exec.rs) is FIFO event ordering plus
//! seeded, forked RNG streams: the same inputs and seed must reproduce
//! the same `JobResult` byte for byte, run after run. These tests guard
//! that contract for both the single-job and the multi-tenant entry
//! points, across every scheduler.

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::{Cloud, CloudBuilder};
use cloudqc::core::batch::OrderingPolicy;
use cloudqc::core::placement::{CloudQcPlacement, PlacementAlgorithm};
use cloudqc::core::schedule::{
    AverageScheduler, CloudQcScheduler, GreedyScheduler, RandomScheduler, Scheduler,
};
use cloudqc::core::simulate_job;
use cloudqc::core::tenant::run_multi_tenant;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(CloudQcScheduler),
        Box::new(GreedyScheduler),
        Box::new(AverageScheduler),
        Box::new(RandomScheduler),
    ]
}

/// A small cloud that forces remote gates and communication contention.
fn contended_cloud(seed: u64) -> Cloud {
    CloudBuilder::new(6)
        .computing_qubits(8)
        .communication_qubits(2)
        .random_topology(0.4, seed)
        .build()
}

#[test]
fn simulate_job_is_deterministic_for_every_scheduler() {
    let cloud = contended_cloud(11);
    let circuit = catalog::by_name("knn_n19").expect("catalog circuit");
    let placement = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 5)
        .expect("cloud has capacity");
    assert!(
        placement.used_qpus().len() > 1,
        "test needs a distributed placement to exercise EPR rounds"
    );
    for sched in schedulers() {
        let a = simulate_job(&circuit, &placement, &cloud, sched.as_ref(), 99);
        let b = simulate_job(&circuit, &placement, &cloud, sched.as_ref(), 99);
        assert_eq!(a, b, "{} nondeterministic", sched.name());
        // Byte-identical, not merely `==`:
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{}", sched.name());
        assert!(a.remote_gates > 0, "placement induced no remote gates");
    }
}

#[test]
fn simulate_job_seed_actually_matters() {
    // Guards against an accidentally ignored seed: with stochastic EPR
    // generation, two far-apart seeds almost surely differ in at least
    // one of these draws.
    let cloud = contended_cloud(11);
    let circuit = catalog::by_name("knn_n19").expect("catalog circuit");
    let placement = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 5)
        .expect("cloud has capacity");
    let distinct = (0..16u64)
        .map(|s| simulate_job(&circuit, &placement, &cloud, &CloudQcScheduler, s).epr_rounds)
        .collect::<std::collections::HashSet<_>>();
    assert!(
        distinct.len() > 1,
        "16 different seeds produced identical EPR round counts"
    );
}

#[test]
fn run_multi_tenant_is_deterministic_for_every_scheduler() {
    let cloud = contended_cloud(23);
    let batch: Vec<_> = ["qft_n13", "ghz_n16", "bv_n12", "ising_n14", "qugan_n11"]
        .iter()
        .map(|name| catalog::by_name(name).expect("catalog circuit"))
        .collect();
    for sched in schedulers() {
        let a = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            sched.as_ref(),
            OrderingPolicy::default(),
            7,
        )
        .expect("batch fits");
        let b = run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            sched.as_ref(),
            OrderingPolicy::default(),
            7,
        )
        .expect("batch fits");
        assert_eq!(a, b, "{} nondeterministic", sched.name());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{}", sched.name());
        assert_eq!(a.outcomes.len(), batch.len());
    }
}

#[test]
fn run_multi_tenant_fifo_ordering_is_deterministic() {
    // FIFO exercises the admission queue differently from the default
    // metric ordering; both must reproduce exactly.
    let cloud = contended_cloud(31);
    let batch: Vec<_> = ["adder_n10", "qft_n11", "cat_n12"]
        .iter()
        .map(|name| catalog::by_name(name).expect("catalog circuit"))
        .collect();
    let run = |seed: u64| {
        run_multi_tenant(
            &batch,
            &cloud,
            &CloudQcPlacement::default(),
            &RandomScheduler,
            OrderingPolicy::Fifo,
            seed,
        )
        .expect("batch fits")
    };
    assert_eq!(run(3), run(3));
    assert_eq!(run(4), run(4));
}
