//! Streaming-vs-retained metrics equivalence for the service layer.
//!
//! The resident `Service` replaces the retain-everything `RunReport`
//! aggregation with a constant-memory `OnlineReport` (Welford running
//! aggregates + a bounded reservoir for percentiles). These property
//! tests pin the contract: for the same seeded run, the streaming
//! aggregates must match what the retained per-job records compute —
//! exactly for counts/max/makespan, to float tolerance for means, and
//! exactly for percentiles while the reservoir is exhaustive (its
//! capacity covers every completion). Past capacity the reservoir only
//! promises an in-range estimate; a dedicated case checks that too.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::Circuit;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::CloudQcPlacement;
use cloudqc::core::runtime::{AdmissionPolicy, Orchestrator};
use cloudqc::core::schedule::{
    AverageScheduler, CloudQcScheduler, GreedyScheduler, RandomScheduler, Scheduler,
};
use cloudqc::core::workload::Workload;
use cloudqc::sim::metrics::Summary;
use proptest::prelude::*;

fn pool() -> Vec<Circuit> {
    vec![
        catalog::by_name("vqe_n4").unwrap(),
        catalog::by_name("qft_n13").unwrap(),
        catalog::by_name("ghz_n16").unwrap(),
        catalog::by_name("qugan_n11").unwrap(),
    ]
}

fn scheduler_for(pick: u8) -> Box<dyn Scheduler> {
    match pick % 4 {
        0 => Box::new(CloudQcScheduler),
        1 => Box::new(GreedyScheduler),
        2 => Box::new(AverageScheduler),
        _ => Box::new(RandomScheduler),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every scheduler, one seeded service run's OnlineReport
    /// agrees with the retained RunReport computed from the same run.
    #[test]
    fn online_report_matches_retained_run_report(
        seed in any::<u64>(),
        scheduler_pick in 0u8..4,
        mean_gap in 300.0f64..4_000.0,
    ) {
        let cloud = CloudBuilder::new(4)
            .computing_qubits(16)
            .communication_qubits(2)
            .ring_topology()
            .build();
        let placement = CloudQcPlacement::default();
        let scheduler = scheduler_for(scheduler_pick);
        let workload = Workload::poisson(&pool(), 8, mean_gap, seed);
        let mut svc = Orchestrator::new(&cloud, &placement, scheduler.as_ref(), seed)
            .with_admission(AdmissionPolicy::Backfill)
            .into_service();
        svc.submit_workload(&workload);
        let report = svc.drive().unwrap();
        let online = svc.online();

        // Counts and tick-exact aggregates.
        prop_assert_eq!(online.completed(), report.outcomes.len() as u64);
        prop_assert_eq!(online.rejected(), report.rejected.len() as u64);
        prop_assert_eq!(online.last_finish(), report.makespan);
        let jcts: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks() as f64)
            .collect();
        let summary = Summary::of(&jcts).unwrap();
        prop_assert_eq!(online.max_completion_time(), summary.max);

        // Means to float tolerance (Welford vs naive sum ordering).
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        prop_assert!(rel(online.mean_completion_time(), report.mean_completion_time()) < 1e-9);
        let mean_online = online.mean_breakdown().unwrap();
        let mean_retained = report.mean_breakdown().unwrap();
        prop_assert!(rel(mean_online.queueing, mean_retained.queueing) < 1e-9);
        prop_assert!(rel(mean_online.epr_wait, mean_retained.epr_wait) < 1e-9);
        prop_assert!(rel(mean_online.compute, mean_retained.compute) < 1e-9);

        // Throughput: completions per tick up to the makespan.
        let expected_tp = report.outcomes.len() as f64 / report.makespan.as_ticks() as f64;
        prop_assert!(rel(online.throughput_per_tick(), expected_tp) < 1e-12);

        // Percentiles: the default reservoir (1024) dwarfs 8 jobs, so
        // the sample is exhaustive and quantiles are *exact*.
        prop_assert!(online.reservoir().is_exhaustive());
        prop_assert_eq!(online.quantile(0.5).unwrap(), summary.p50);
        prop_assert_eq!(online.quantile(0.95).unwrap(), summary.p95);
        prop_assert_eq!(online.quantile(1.0).unwrap(), summary.max);
    }

    /// Past its capacity the reservoir degrades gracefully: quantiles
    /// stay inside the observed range and within a loose tolerance of
    /// the true percentile, deterministically per seed.
    #[test]
    fn overflowed_reservoir_estimates_stay_in_tolerance(
        seed in any::<u64>(),
    ) {
        let cloud = CloudBuilder::new(4)
            .computing_qubits(16)
            .communication_qubits(2)
            .ring_topology()
            .build();
        let placement = CloudQcPlacement::default();
        let workload = Workload::poisson(&pool(), 24, 2_000.0, seed);
        let run = |reservoir: usize| {
            let mut svc = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, seed)
                .with_admission(AdmissionPolicy::Backfill)
                .into_service()
                .with_reservoir_capacity(reservoir);
            svc.submit_workload(&workload);
            let report = svc.drive().unwrap();
            (report, svc.online().clone())
        };
        let (report, online) = run(8);
        prop_assert!(!online.reservoir().is_exhaustive());
        prop_assert_eq!(online.reservoir().len(), 8);
        let jcts: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| o.completion_time.as_ticks() as f64)
            .collect();
        let summary = Summary::of(&jcts).unwrap();
        let p50 = online.quantile(0.5).unwrap();
        prop_assert!(p50 >= summary.min && p50 <= summary.max);
        // Eight uniform samples bound the median estimate loosely: it
        // cannot sit in the extreme tails of the empirical CDF.
        let cdf = cloudqc::sim::metrics::Cdf::new(jcts.iter().copied());
        let rank = cdf.fraction_at(p50);
        prop_assert!((0.05..=0.95).contains(&rank), "p50 estimate at rank {rank}");
        // And the estimate is reproducible: same seed, same reservoir.
        let (_, again) = run(8);
        prop_assert_eq!(again.quantile(0.5), Some(p50));
    }
}
