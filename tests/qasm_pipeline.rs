//! QASM round-trip integration: every generated workload survives
//! write → parse with its characteristics intact, and parsed circuits
//! flow through the placement pipeline.

use cloudqc::circuit::generators::catalog;
use cloudqc::circuit::qasm;
use cloudqc::circuit::stats::CircuitStats;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::{CloudQcPlacement, PlacementAlgorithm};

#[test]
fn catalog_circuits_roundtrip_through_qasm() {
    // The smaller half of the catalog keeps debug-mode runtime sane.
    for name in [
        "ghz_n127",
        "bv_n70",
        "ising_n34",
        "cat_n65",
        "knn_n67",
        "qugan_n39",
        "cc_n64",
        "adder_n64",
        "qft_n29",
        "vqe_uccsd_n28",
    ] {
        let original = catalog::by_name(name).unwrap();
        let text = qasm::write(&original);
        let parsed = qasm::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let a = CircuitStats::of(&original);
        let b = CircuitStats::of(&parsed);
        assert_eq!(a.qubits, b.qubits, "{name}");
        assert_eq!(a.two_qubit_gates, b.two_qubit_gates, "{name}");
        assert_eq!(a.depth, b.depth, "{name}");
        assert_eq!(a.total_gates, b.total_gates, "{name}");
    }
}

#[test]
fn parsed_qasm_flows_through_placement() {
    let original = catalog::by_name("qugan_n39").unwrap();
    let parsed = qasm::parse(&qasm::write(&original)).unwrap();
    let cloud = CloudBuilder::paper_default(3).build();
    let p = CloudQcPlacement::default()
        .place(&parsed, &cloud, &cloud.status(), 1)
        .unwrap();
    assert_eq!(p.num_qubits(), 39);
    assert!(p.fits(&cloud.status()));
}

#[test]
fn angle_fidelity_through_roundtrip() {
    let original = catalog::by_name("qft_n29").unwrap();
    let parsed = qasm::parse(&qasm::write(&original)).unwrap();
    // Compare every rotation angle bit-for-bit (the writer prints full
    // precision).
    for (a, b) in original.gates().iter().zip(parsed.gates()) {
        if let (cloudqc::circuit::GateKind::Rz(x), cloudqc::circuit::GateKind::Rz(y)) =
            (a.kind(), b.kind())
        {
            assert!((x - y).abs() < 1e-15)
        }
    }
}
