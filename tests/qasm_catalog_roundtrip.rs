//! QASM round-trip coverage of the entire generator catalog.
//!
//! Every named instance the paper evaluates (Table II) plus the
//! multi-tenant workload widths must survive export → parse with its
//! gate counts, depth, and interaction graph intact. A property test
//! then sweeps random widths of every generator family so new widths
//! stay covered too.

use cloudqc::circuit::generators::catalog::{self, TABLE2_INSTANCES};
use cloudqc::circuit::interaction::interaction_graph;
use cloudqc::circuit::{qasm, Circuit};
use proptest::prelude::*;

/// Asserts a full structural round-trip for one circuit.
fn assert_roundtrip(name: &str, original: &Circuit) {
    let text = qasm::write(original);
    let parsed = qasm::parse(&text)
        .unwrap_or_else(|e| panic!("{name}: exported QASM failed to parse: {e:?}"));
    assert_eq!(parsed.num_qubits(), original.num_qubits(), "{name}: qubits");
    assert_eq!(parsed.gate_count(), original.gate_count(), "{name}: gates");
    assert_eq!(
        parsed.two_qubit_gate_count(),
        original.two_qubit_gate_count(),
        "{name}: two-qubit gates"
    );
    assert_eq!(parsed.depth(), original.depth(), "{name}: depth");
    assert!(
        interaction_graph(&parsed) == interaction_graph(original),
        "{name}: interaction graph changed across round-trip"
    );
}

#[test]
fn every_table2_instance_round_trips() {
    for name in TABLE2_INSTANCES {
        let circuit =
            catalog::by_name(name).unwrap_or_else(|| panic!("{name} missing from catalog"));
        assert_roundtrip(name, &circuit);
    }
}

#[test]
fn multi_tenant_workload_instances_round_trip() {
    // The §VI.D multi-tenant batches use smaller widths of the same
    // families; exercise one small width per family, including VQE
    // which Table II omits.
    for name in [
        "ghz_n6",
        "cat_n6",
        "bv_n8",
        "ising_n8",
        "swap_test_n7",
        "knn_n9",
        "qugan_n9",
        "cc_n6",
        "adder_n8",
        "multiplier_n9",
        "qft_n29",
        "qv_n8",
        "vqe_n4",
        "vqe_uccsd_n4",
    ] {
        let circuit =
            catalog::by_name(name).unwrap_or_else(|| panic!("{name} missing from catalog"));
        assert_roundtrip(name, &circuit);
    }
}

/// Strategy: a valid catalog name with a random width for each family.
fn catalog_name_strategy() -> impl Strategy<Value = String> {
    (0usize..14, 0usize..40).prop_map(|(family, w)| {
        match family {
            0 => format!("ghz_n{}", 2 + w),
            1 => format!("cat_n{}", 2 + w),
            2 => format!("bv_n{}", 2 + w),
            3 => format!("ising_n{}", 2 + w),
            4 => format!("swap_test_n{}", 3 + 2 * w), // odd ≥ 3
            5 => format!("knn_n{}", 3 + 2 * w),       // odd ≥ 3
            6 => format!("qugan_n{}", 5 + 2 * w),     // odd ≥ 5
            7 => format!("cc_n{}", 3 + w),
            8 => format!("adder_n{}", 4 + 2 * w), // even ≥ 4
            9 => format!("multiplier_n{}", 6 + 3 * w), // multiple of 3, ≥ 6
            10 => format!("qft_n{}", 2 + w),
            11 => format!("qv_n{}", 2 + w),
            12 => format!("vqe_n{}", 2 + w),
            _ => format!("vqe_uccsd_n{}", 4 + w),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_widths_of_every_family_round_trip(name in catalog_name_strategy()) {
        let circuit = catalog::by_name(&name);
        prop_assert!(circuit.is_some(), "{} rejected by catalog", name);
        assert_roundtrip(&name, &circuit.unwrap());
    }
}
