//! The service layer in one demo: a resident `Service` serving traffic
//! in epochs over a persistent placement cache, streaming metrics
//! instead of retained outcomes, the admission-policy matrix over a
//! multi-tenant, SLA-tagged, heavy-tailed workload, and the continuous
//! clock — submissions landing on a live executor, SLA preemption
//! parking an elephant for critical mice, and admission-time load
//! shedding under a surge.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```

use cloudqc::circuit::generators::{catalog, ghz::ghz};
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::CloudQcPlacement;
use cloudqc::core::runtime::{AdmissionPolicy, LoadShedPolicy, Orchestrator};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::workload::Workload;
use cloudqc::sim::Tick;

fn main() {
    let cloud = CloudBuilder::paper_default(42).build();
    let placement = CloudQcPlacement::default();

    // ── 1. Sessions: epochs over one resident service ──────────────
    // The same diurnal trace drives three epochs. The placement cache
    // persists across epochs, so after the cold first epoch admission
    // answers from cache — outcomes never move, only the work drops.
    println!("== Sessions: three epochs of one diurnal trace through one Service ==\n");
    let pool: Vec<_> = ["qugan_n39", "knn_n67", "qft_n29", "adder_n64"]
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog circuit"))
        .collect();
    let diurnal = Workload::diurnal(&pool, 10, 4_000.0, 40_000, 0.8, 7);
    let mut service = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, 7)
        .with_admission(AdmissionPolicy::Backfill)
        .into_service();
    println!(
        "{:>6} {:>10} {:>11} {:>7} {:>8} {:>10}",
        "epoch", "mean JCT", "cache hit%", "hits", "misses", "scan/round"
    );
    for epoch in 1..=3 {
        service.submit_workload(&diurnal);
        let report = service.drive().expect("epoch completes");
        println!(
            "{:>6} {:>10.0} {:>10.0}% {:>7} {:>8} {:>10.2}",
            epoch,
            report.mean_completion_time(),
            100.0 * report.placement_cache.hit_rate(),
            report.placement_cache.hits,
            report.placement_cache.misses,
            report.allocation.mean_scan(),
        );
    }
    let totals = service.drain().expect("drain");
    println!(
        "\nlifetime: {} jobs over {} epochs; cache {} hits / {} misses ({} entries resident)",
        totals.completed,
        totals.epochs,
        totals.placement_cache.hits,
        totals.placement_cache.misses,
        totals.cache_entries
    );
    println!(
        "streaming report: mean JCT {:.0}, p50 {:.0}, p95 {:.0}, throughput {:.5} jobs/tick\n",
        totals.online.mean_completion_time(),
        totals.online.quantile(0.5).unwrap_or(0.0),
        totals.online.quantile(0.95).unwrap_or(0.0),
        totals.online.throughput_per_tick()
    );

    // ── 2. The admission-policy matrix ─────────────────────────────
    // A heavy-tailed (Pareto) GHZ stream — mostly mice, a few
    // elephants — split across two tenants (weights 3:1) with a
    // uniform SLA, against a small cloud the elephants saturate. Each
    // policy trades the same queue differently.
    println!("== Admission policies over a heavy-tailed two-tenant SLA workload ==\n");
    let small_cloud = CloudBuilder::new(4)
        .computing_qubits(20)
        .communication_qubits(3)
        .ring_topology()
        .build();
    let heavy = Workload::pareto_sizes(ghz, 20, 1.2, 8, 64, 150.0, 21)
        .assign_round_robin_tenants(&[3.0, 1.0])
        .with_uniform_sla(2_500);
    let policies: [(&str, AdmissionPolicy); 5] = [
        ("backfill", AdmissionPolicy::Backfill),
        ("priority (Eq. 11)", AdmissionPolicy::default()),
        ("shortest-job-first", AdmissionPolicy::ShortestJobFirst),
        ("weighted fair-share", AdmissionPolicy::WeightedFairShare),
        ("deadline-aware", AdmissionPolicy::DeadlineAware),
    ];
    println!(
        "{:>20} {:>10} {:>10} {:>10} {:>9}",
        "policy", "mean JCT", "p95 JCT", "max queue", "rejected"
    );
    for (name, policy) in policies {
        let mut svc = Orchestrator::new(&small_cloud, &placement, &CloudQcScheduler, 21)
            .with_admission(policy)
            .into_service();
        svc.submit_workload(&heavy);
        let report = svc.drive().expect("policy epoch completes");
        let online = svc.online();
        let max_queue = report
            .outcomes
            .iter()
            .map(|o| o.breakdown.queueing)
            .max()
            .unwrap_or(0);
        println!(
            "{:>20} {:>10.0} {:>10.0} {:>10} {:>9}",
            name,
            online.mean_completion_time(),
            online.quantile(0.95).unwrap_or(0.0),
            max_queue,
            report.rejected.len(),
        );
    }
    println!(
        "\nShortest-job-first compresses mean JCT (mice jump the elephants);\n\
         weighted fair-share lets the weight-3 tenant's jobs in first;\n\
         deadline-aware is the only policy allowed to reject: jobs whose\n\
         SLA lapsed while queueing leave instead of rotting in the queue."
    );

    // ── 3. The continuous clock: preemption and load shedding ──────
    // No epoch resets: the elephant takes the floor, the service pauses
    // mid-flight on a tick budget, and the critical mice are submitted
    // onto the *live* executor. With preemption on, admitting each
    // deadline-carrying mouse parks the elephant's remote gates, so the
    // mice stop queueing behind its EPR traffic.
    println!("\n== Continuous clock: SLA preemption over a live executor ==\n");
    let tight = CloudBuilder::new(2)
        .computing_qubits(16)
        .communication_qubits(1)
        .epr_success_prob(0.2)
        .line_topology()
        .build();
    let elephant = Workload::batch(vec![catalog::by_name("ghz_n20").expect("catalog circuit")]);
    let mice = Workload::trace((0..4u64).map(|i| {
        (
            catalog::by_name("ghz_n12").expect("catalog circuit"),
            Tick::new(200 + i * 2_500),
        )
    }))
    .with_uniform_sla(1_000_000);
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "preemption", "worst mouse", "mean mouse", "suspensions"
    );
    for preempt in [false, true] {
        let mut svc = Orchestrator::new(&tight, &placement, &CloudQcScheduler, 9)
            .with_preemption(preempt)
            .into_service();
        svc.submit_workload(&elephant);
        let early = svc.drive_for(200).expect("elephant takes the floor");
        assert!(!early.quiescent, "the elephant is mid-flight");
        svc.submit_workload(&mice); // lands on the live executor
        let window = svc.drive_to_quiescence().expect("cloud drains");
        let mouse_jcts: Vec<u64> = window
            .outcomes
            .iter()
            .filter(|o| o.job >= elephant.len())
            .map(|o| o.completion_time.as_ticks())
            .collect();
        println!(
            "{:>12} {:>12} {:>12.0} {:>12}",
            if preempt { "on" } else { "off" },
            mouse_jcts.iter().max().copied().unwrap_or(0),
            mouse_jcts.iter().sum::<u64>() as f64 / mouse_jcts.len().max(1) as f64,
            svc.report().preemptions,
        );
    }

    // A surge against the same small cloud, with a queue-depth cap:
    // arrivals past the cap are turned away at the door with a typed
    // error instead of inflating everyone's tail latency.
    println!("\n== Load shedding under a surge ==\n");
    let surge = Workload::pareto_sizes(ghz, 30, 1.2, 8, 64, 60.0, 33);
    for cap in [None, Some(LoadShedPolicy::queue_depth(4))] {
        let mut orch = Orchestrator::new(&small_cloud, &placement, &CloudQcScheduler, 33);
        if let Some(policy) = cap {
            orch = orch.with_load_shedding(policy);
        }
        let mut svc = orch.into_service();
        svc.submit_workload(&surge);
        let window = svc.drive_to_quiescence().expect("surge drains");
        let online = svc.online();
        println!(
            "{:>12}: {:>2} served, {:>2} shed; p95 JCT {:>6.0}",
            if cap.is_some() {
                "depth cap 4"
            } else {
                "no cap"
            },
            window.outcomes.len(),
            window.rejected.len(),
            online.quantile(0.95).unwrap_or(0.0),
        );
        if let Some((job, err)) = window.rejected.first() {
            println!("{:>14}first shed: job {job}: {err}", "");
        }
    }
}
