//! Open-arrival runtime demo: Poisson and bursty workloads through the
//! unified orchestrator with backfill admission, reporting the per-job
//! latency breakdown (queueing vs. EPR wait vs. compute), throughput
//! and utilization — the runtime layer's observability in one table.
//!
//! ```text
//! cargo run --release --example workload_replay
//! ```

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::CloudQcPlacement;
use cloudqc::core::runtime::{AdmissionPolicy, Orchestrator};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::workload::Workload;

fn main() {
    let cloud = CloudBuilder::paper_default(42).build();
    let pool: Vec<_> = ["qugan_n39", "knn_n67", "adder_n64", "qft_n63", "ghz_n127"]
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog circuit"))
        .collect();
    let placement = CloudQcPlacement::default();

    // Two traffic shapes over the same job mix: steady Poisson arrivals
    // and three flash-crowd bursts.
    let scenarios = [
        ("poisson", Workload::poisson(&pool, 10, 4_000.0, 7)),
        ("bursty", Workload::bursty(&pool, 3, 4, 15_000.0, 7)),
    ];
    for (name, workload) in &scenarios {
        println!(
            "== {name}: {} jobs, {} qubits total, last arrival {} ==\n",
            workload.len(),
            workload.total_qubits(),
            workload.last_arrival()
        );
        let report = Orchestrator::new(&cloud, &placement, &CloudQcScheduler, 7)
            .with_admission(AdmissionPolicy::Backfill)
            .run(workload)
            .expect("workload completes");

        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "job", "arrived", "JCT", "queueing", "EPR wait", "compute", "remote"
        );
        for o in &report.outcomes {
            println!(
                "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                o.job,
                o.arrived_at.as_ticks(),
                o.completion_time.as_ticks(),
                o.breakdown.queueing,
                o.breakdown.epr_wait,
                o.breakdown.compute,
                o.remote_gates,
            );
        }
        let mean = report.mean_breakdown().expect("non-empty run");
        let (q, e, c) = (
            mean.queueing / mean.total(),
            mean.epr_wait / mean.total(),
            mean.compute / mean.total(),
        );
        println!(
            "\nmean JCT {:.0} ticks = {:.0}% queueing + {:.0}% EPR wait + {:.0}% compute",
            mean.total(),
            100.0 * q,
            100.0 * e,
            100.0 * c
        );
        println!(
            "utilization {:.1}% of {} computing qubits over makespan {}",
            100.0 * report.utilization(cloud.total_computing_capacity()),
            cloud.total_computing_capacity(),
            report.makespan
        );
        let bucket = (report.makespan.as_ticks() / 8).max(1);
        let tp = report.throughput(bucket);
        let done: Vec<String> = tp.buckets().iter().map(|v| format!("{v:.0}")).collect();
        println!(
            "completions per {bucket}-tick bucket: [{}]\n",
            done.join(", ")
        );
    }
    println!("Queueing dominates under bursts (jobs pile up behind the wave), while");
    println!("EPR wait tracks each job's remote-gate count — the breakdown separates");
    println!("admission pressure from network pressure.");
}
