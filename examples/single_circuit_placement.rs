//! Compare all five placement algorithms of the paper's Table III on
//! one circuit: remote operations, communication cost, and simulated
//! job completion time.
//!
//! ```text
//! cargo run --release --example single_circuit_placement [circuit_name]
//! ```

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::{
    cost, AnnealingPlacement, CloudQcBfsPlacement, CloudQcPlacement, GeneticPlacement,
    PlacementAlgorithm, RandomPlacement,
};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::simulate_job;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "qugan_n71".to_owned());
    let Some(circuit) = catalog::by_name(&name) else {
        eprintln!("unknown circuit `{name}` — try qugan_n71, knn_n67, adder_n64, qft_n63 …");
        std::process::exit(2);
    };
    let cloud = CloudBuilder::paper_default(42).build();
    println!(
        "{name}: {} qubits, {} two-qubit gates on a {}-QPU cloud\n",
        circuit.num_qubits(),
        circuit.two_qubit_gate_count(),
        cloud.qpu_count()
    );
    println!(
        "{:<12} {:>11} {:>10} {:>12} {:>12}",
        "method", "remote ops", "comm cost", "JCT (ticks)", "QPUs used"
    );

    let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
        Box::new(AnnealingPlacement {
            iterations: 5_000,
            ..AnnealingPlacement::default()
        }),
        Box::new(RandomPlacement),
        Box::new(GeneticPlacement::default()),
        Box::new(CloudQcBfsPlacement::default()),
        Box::new(CloudQcPlacement::default()),
    ];
    for algo in &algorithms {
        match algo.place(&circuit, &cloud, &cloud.status(), 7) {
            Ok(p) => {
                let jct = simulate_job(&circuit, &p, &cloud, &CloudQcScheduler, 7);
                println!(
                    "{:<12} {:>11} {:>10} {:>12} {:>12}",
                    algo.name(),
                    cost::remote_op_count(&circuit, &p),
                    cost::communication_cost(&circuit, &p, &cloud),
                    jct.completion_time.as_ticks(),
                    p.used_qpus().len()
                );
            }
            Err(e) => println!("{:<12} failed: {e}", algo.name()),
        }
    }
}
