//! Fix one placement and compare the four network schedulers of the
//! paper's §VI.C — shows why priority-aware allocation with starvation
//! freedom beats pure greedy on DAG-heavy circuits.
//!
//! ```text
//! cargo run --release --example network_scheduling [circuit_name]
//! ```

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::{CloudQcPlacement, PlacementAlgorithm};
use cloudqc::core::schedule::{
    priority::priorities, AverageScheduler, CloudQcScheduler, GreedyScheduler, RandomScheduler,
    RemoteDag, Scheduler,
};
use cloudqc::core::simulate_job;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "qft_n63".to_owned());
    let Some(circuit) = catalog::by_name(&name) else {
        eprintln!("unknown circuit `{name}`");
        std::process::exit(2);
    };
    let cloud = CloudBuilder::paper_default(42).build();
    let placement = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 7)
        .expect("cloud has capacity");

    // Inspect the remote DAG the scheduler works on (paper Fig. 3b).
    let remote = RemoteDag::new(&circuit, &placement, &cloud);
    let prios = priorities(&remote);
    println!(
        "{name}: {} remote gates, remote-DAG critical path {} edges, max priority {}\n",
        remote.node_count(),
        remote.dag().critical_path_len(),
        prios.iter().max().copied().unwrap_or(0)
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GreedyScheduler),
        Box::new(AverageScheduler),
        Box::new(RandomScheduler),
        Box::new(CloudQcScheduler),
    ];
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "scheduler", "JCT (ticks)", "EPR rounds", "vs CloudQC"
    );
    let reps = 5;
    let mean_jct = |s: &dyn Scheduler| -> (f64, f64) {
        let mut jct = 0.0;
        let mut rounds = 0.0;
        for seed in 0..reps {
            let r = simulate_job(&circuit, &placement, &cloud, s, seed);
            jct += r.completion_time.as_ticks() as f64;
            rounds += r.epr_rounds as f64;
        }
        (jct / reps as f64, rounds / reps as f64)
    };
    let (baseline, _) = mean_jct(&CloudQcScheduler);
    for sched in &schedulers {
        let (jct, rounds) = mean_jct(sched.as_ref());
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>13.2}x",
            sched.name(),
            jct,
            rounds,
            jct / baseline
        );
    }
}
