//! Multi-tenant demo: a batch of mixed circuits shares one quantum
//! cloud; compare CloudQC's batch ordering against FIFO and the BFS
//! placement variant (the paper's §VI.D experiment in miniature).
//!
//! ```text
//! cargo run --release --example multi_tenant_cloud
//! ```

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::batch::OrderingPolicy;
use cloudqc::core::placement::{CloudQcBfsPlacement, CloudQcPlacement, PlacementAlgorithm};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::tenant::run_multi_tenant;
use cloudqc::sim::metrics::Summary;

fn main() {
    let cloud = CloudBuilder::paper_default(42).build();
    // Eight tenants submit jobs of very different shapes at t = 0.
    let batch: Vec<_> = [
        "qft_n63",
        "qugan_n71",
        "knn_n67",
        "adder_n64",
        "multiplier_n45",
        "ghz_n127",
        "bv_n70",
        "qugan_n39",
    ]
    .iter()
    .map(|n| catalog::by_name(n).expect("catalog circuit"))
    .collect();
    println!(
        "batch of {} jobs, {} qubits total, on a {}-qubit cloud\n",
        batch.len(),
        batch.iter().map(|c| c.num_qubits()).sum::<usize>(),
        cloud.total_computing_capacity()
    );

    let variants: Vec<(&str, Box<dyn PlacementAlgorithm>, OrderingPolicy)> = vec![
        (
            "CloudQC",
            Box::new(CloudQcPlacement::default()),
            OrderingPolicy::default(),
        ),
        (
            "CloudQC-BFS",
            Box::new(CloudQcBfsPlacement::default()),
            OrderingPolicy::default(),
        ),
        (
            "CloudQC-FIFO",
            Box::new(CloudQcPlacement::default()),
            OrderingPolicy::Fifo,
        ),
    ];
    println!(
        "{:<13} {:>12} {:>12} {:>12} {:>12}",
        "variant", "mean JCT", "median JCT", "p95 JCT", "makespan"
    );
    for (name, algo, ordering) in &variants {
        let run = run_multi_tenant(
            &batch,
            &cloud,
            algo.as_ref(),
            &CloudQcScheduler,
            *ordering,
            7,
        )
        .expect("batch completes");
        let jcts: Vec<f64> = run
            .completion_times()
            .iter()
            .map(|t| t.as_ticks() as f64)
            .collect();
        let summary = Summary::of(&jcts).expect("non-empty batch");
        println!(
            "{:<13} {:>12.0} {:>12.0} {:>12.0} {:>12}",
            name,
            summary.mean,
            summary.p50,
            summary.p95,
            run.makespan.as_ticks()
        );
    }
    println!("\nJCT is measured from batch arrival (t = 0), so it includes queueing.");
}
