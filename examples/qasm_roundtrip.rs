//! Ingest an OpenQASM 2.0 program, place it, and write the circuit
//! back out — the PytKet-equivalent path of the paper's toolchain.
//!
//! ```text
//! cargo run --release --example qasm_roundtrip [file.qasm]
//! ```
//!
//! Without an argument a bundled 8-qubit QFT source is used.

use cloudqc::circuit::qasm;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::{cost, CloudQcPlacement, PlacementAlgorithm};

const BUILTIN: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
creg c[8];
h q[0];
cu1(pi/2) q[1],q[0];
h q[1];
cu1(pi/4) q[2],q[0];
cu1(pi/2) q[2],q[1];
h q[2];
cu1(pi/8) q[3],q[0];
cu1(pi/4) q[3],q[1];
cu1(pi/2) q[3],q[2];
h q[3];
cx q[4],q[5];
ccx q[5],q[6],q[7];
measure q -> c;
"#;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => BUILTIN.to_owned(),
    };

    let circuit = match qasm::parse(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("QASM parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed `{}`: {} qubits, {} gates ({} two-qubit), depth {}",
        circuit.name(),
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.two_qubit_gate_count(),
        circuit.depth()
    );

    // Lower cp/swap to the CX basis, as QASMBench transpilation does.
    let lowered = circuit.decompose_to_cx_basis();
    println!(
        "lowered to CX basis: {} gates ({} two-qubit)",
        lowered.gate_count(),
        lowered.two_qubit_gate_count()
    );

    // Place on a tiny cloud so even this small circuit distributes.
    let cloud = CloudBuilder::new(4)
        .computing_qubits(3)
        .communication_qubits(2)
        .ring_topology()
        .build();
    let placement = CloudQcPlacement::default()
        .place(&lowered, &cloud, &cloud.status(), 1)
        .expect("cloud has capacity");
    for qpu in placement.used_qpus() {
        let qubits: Vec<usize> = (0..lowered.num_qubits())
            .filter(|&q| placement.qpu_of(q) == qpu)
            .collect();
        println!("  {qpu}: qubits {qubits:?}");
    }
    println!(
        "remote gates: {}, communication cost: {}",
        cost::remote_op_count(&lowered, &placement),
        cost::communication_cost(&lowered, &placement, &cloud)
    );

    // Round-trip: write the lowered circuit back to OpenQASM.
    let out = qasm::write(&lowered);
    let reparsed = qasm::parse(&out).expect("writer output parses");
    assert_eq!(reparsed.gate_count(), lowered.gate_count());
    println!(
        "round-trip OK ({} QASM lines, gate counts preserved)",
        out.lines().count()
    );
}
