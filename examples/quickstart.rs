//! Quickstart: place one circuit on a quantum cloud, schedule its
//! remote gates, and report the job completion time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudqc::circuit::generators::catalog;
use cloudqc::cloud::CloudBuilder;
use cloudqc::core::placement::{cost, CloudQcPlacement, PlacementAlgorithm};
use cloudqc::core::schedule::CloudQcScheduler;
use cloudqc::core::simulate_job;

fn main() {
    // The paper's default cloud: 20 QPUs, 20 computing + 5 communication
    // qubits each, random topology G(20, 0.3), EPR success 0.3.
    let cloud = CloudBuilder::paper_default(42).build();
    println!(
        "cloud: {} QPUs, {} computing qubits total, {} links",
        cloud.qpu_count(),
        cloud.total_computing_capacity(),
        cloud.topology().edge_count()
    );

    // A 67-qubit KNN kernel from the paper's benchmark suite. It cannot
    // fit any single 20-qubit QPU, so it must be distributed.
    let circuit = catalog::by_name("knn_n67").expect("catalog circuit");
    println!(
        "circuit: {} — {} qubits, {} two-qubit gates, depth {}",
        circuit.name(),
        circuit.num_qubits(),
        circuit.two_qubit_gate_count(),
        circuit.depth()
    );

    // Circuit placement (paper Algorithm 1 + 2).
    let placement = CloudQcPlacement::default()
        .place(&circuit, &cloud, &cloud.status(), 7)
        .expect("the cloud has enough capacity");
    println!(
        "placement: {} QPUs used, {} remote gates, communication cost {}",
        placement.used_qpus().len(),
        cost::remote_op_count(&circuit, &placement),
        cost::communication_cost(&circuit, &placement, &cloud)
    );

    // Network scheduling + discrete-event execution (paper Algorithm 3).
    let result = simulate_job(&circuit, &placement, &cloud, &CloudQcScheduler, 7);
    println!(
        "executed: JCT = {} ticks ({:.1} CX-units), {} EPR rounds across {} remote gates",
        result.completion_time.as_ticks(),
        result.completion_time.as_cx_units(),
        result.epr_rounds,
        result.remote_gates
    );
}
