//! Federation in one demo: a `Fleet` fronting three heterogeneous
//! clouds on one continuous clock — the routing-policy matrix over a
//! skewed two-tenant stream, spillover when a starved backend rejects a
//! distributed job, load-shed backpressure re-routing, and a mid-run
//! backend failure drained by preemption and replayed elsewhere.
//!
//! ```text
//! cargo run --release --example fleet_demo
//! ```

use cloudqc::prelude::*;

/// Four clouds: two big paper-shaped regions (same capacity, different
/// topologies), a mid-size ring, and a small comm-starved edge site
/// that cannot run any job needing a split across QPUs.
struct Regions {
    big: Cloud,
    twin: Cloud,
    ring: Cloud,
    edge: Cloud,
}

fn regions() -> Regions {
    Regions {
        big: CloudBuilder::paper_default(42).build(),
        twin: CloudBuilder::paper_default(43).build(),
        ring: CloudBuilder::new(6)
            .computing_qubits(25)
            .communication_qubits(4)
            .ring_topology()
            .build(),
        edge: CloudBuilder::new(2)
            .computing_qubits(20)
            .communication_qubits(0)
            .line_topology()
            .build(),
    }
}

/// A skewed two-tenant stream: tenant 0 hammers one hot shape, tenant 1
/// sends a different shape a quarter of the time.
fn skewed_stream(fleet: &mut Fleet, n: u64) {
    for i in 0..n {
        let (tenant, shape) = if i % 4 == 3 {
            (1, "ghz_n40")
        } else {
            (0, "qft_n29")
        };
        let mut job = WorkloadJob::new(
            catalog::by_name(shape).expect("catalog circuit"),
            Tick::new(i * 1_500),
        );
        job.tenant = tenant;
        fleet.submit_job(job);
    }
}

fn main() {
    let r = regions();
    let placement = CloudQcPlacement::default();

    // ── 1. The routing-policy matrix ───────────────────────────────
    // The same skewed stream through a fleet of two equal-capacity
    // regions under each policy. Tenant affinity keeps each tenant's
    // placement-cache signatures on one backend; cheapest-placement
    // probes the caches speculatively; utilization balancing ignores
    // shapes entirely.
    println!("== Routing policies over a skewed two-tenant stream ==\n");
    println!(
        "{:>22} {:>10} {:>11} {:>12} {:>12}",
        "policy", "mean JCT", "cache hit%", "backend 0", "backend 1"
    );
    let policies: Vec<Box<dyn RoutingPolicy>> = vec![
        Box::new(UtilizationBalanced),
        Box::new(CheapestPlacement::new()),
        Box::new(TenantAffinity::new()),
        Box::new(RoundRobin::new()),
        Box::new(RandomRouting::new(7)),
    ];
    for policy in policies {
        let mut fleet = FleetBuilder::new()
            .backend(ServiceBuilder::new(
                &r.big,
                &placement,
                &CloudQcScheduler,
                9,
            ))
            .backend(ServiceBuilder::new(
                &r.twin,
                &placement,
                &CloudQcScheduler,
                9,
            ))
            .boxed_policy(policy)
            .build();
        skewed_stream(&mut fleet, 32);
        fleet.drive_to_quiescence().expect("stream drains");
        let report = fleet.report();
        println!(
            "{:>22} {:>10.0} {:>10.0}% {:>12} {:>12}",
            report.policy,
            report.online.mean_completion_time(),
            100.0 * report.placement_cache.hit_rate(),
            report.backends[0].completed,
            report.backends[1].completed,
        );
    }
    println!(
        "\nThe shape-blind balancers split every tenant's signature stream\n\
         across both caches and run cold. Cheapest-placement runs hot by\n\
         piling the whole stream onto one region; tenant affinity gets the\n\
         cache heat while still spreading tenants across the fleet."
    );

    // ── 2. Spillover: a starved backend rejects, the fleet re-routes ─
    // The edge site has no communication qubits, so a 30-qubit GHZ that
    // must split across its two QPUs is rejected there with a typed
    // starvation error. The fleet counts a spillover and the job lands
    // on the ring — the submitter never sees the rejection.
    println!("\n== Spillover off a communication-starved edge site ==\n");
    let mut fleet = FleetBuilder::new()
        .backend(ServiceBuilder::new(
            &r.edge,
            &placement,
            &CloudQcScheduler,
            5,
        ))
        .backend(ServiceBuilder::new(
            &r.ring,
            &placement,
            &CloudQcScheduler,
            5,
        ))
        .build();
    fleet.submit(
        catalog::by_name("ghz_n30").expect("catalog circuit"),
        Tick::ZERO,
    );
    let window = fleet.drive_to_quiescence().expect("job lands");
    let report = fleet.report();
    println!(
        "completed {} / rejected {} — {} spillover(s); edge ran {}, ring ran {}",
        report.completed,
        report.rejected,
        report.spillovers,
        report.backends[0].completed,
        report.backends[1].completed,
    );
    assert!(window.rejected.is_empty());

    // ── 3. Load shedding as backpressure ───────────────────────────
    // A one-QPU backend with a depth-1 queue cap sheds the surge; each
    // shed is a re-route to the open backend, not a loss.
    println!("\n== Load-shed backpressure re-routing ==\n");
    let tiny = CloudBuilder::new(1).computing_qubits(28).build();
    let mut fleet = FleetBuilder::new()
        .backend(
            ServiceBuilder::new(&tiny, &placement, &CloudQcScheduler, 5)
                .load_shedding(LoadShedPolicy::queue_depth(1)),
        )
        .backend(ServiceBuilder::new(
            &r.ring,
            &placement,
            &CloudQcScheduler,
            5,
        ))
        .policy(RoundRobin::new())
        .build();
    for _ in 0..6 {
        fleet.submit(
            catalog::by_name("ghz_n25").expect("catalog circuit"),
            Tick::ZERO,
        );
    }
    fleet.drive_to_quiescence().expect("surge drains");
    let report = fleet.report();
    println!(
        "6 submitted under round-robin: {} completed, {} shed-and-rerouted, {} rejected",
        report.completed, report.reroutes, report.rejected
    );

    // ── 4. Failover: drain a live backend, replay elsewhere ────────
    // Mid-run, backend 0 fails: in-flight jobs are suspended via the
    // preemption machinery, evacuated with their queued and pending
    // siblings, and re-routed. After recovery the backend rejoins the
    // candidate set. Conservation holds throughout: every job is
    // reported exactly once.
    println!("\n== Mid-run backend failure and recovery ==\n");
    let pool: Vec<Circuit> = ["qugan_n39", "qft_n29", "ghz_n40"]
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog circuit"))
        .collect();
    let mut fleet = FleetBuilder::new()
        .backend(ServiceBuilder::new(
            &r.big,
            &placement,
            &CloudQcScheduler,
            3,
        ))
        .backend(ServiceBuilder::new(
            &r.ring,
            &placement,
            &CloudQcScheduler,
            3,
        ))
        .build();
    fleet.submit_workload(&Workload::poisson(&pool, 10, 1_000.0, 3));
    fleet.drive_for(2_000).expect("fleet warms up");
    let evacuated = fleet.fail_backend(0);
    println!("backend 0 failed: {evacuated} job(s) evacuated and re-routed");
    fleet.drive_for(2_000).expect("ring carries the load");
    fleet.recover_backend(0);
    let window = fleet.drive_to_quiescence().expect("fleet drains");
    assert!(window.quiescent);
    let report = fleet.report();
    println!(
        "drained: {} completed + {} rejected == 10 submitted; {} failover, {} unresolved",
        report.completed, report.rejected, report.failovers, report.unresolved
    );
    assert_eq!(report.completed + report.rejected, 10);
    assert_eq!(report.unresolved, 0);
}
